/**
 * @file
 * Ablation: does a more complex control strategy beat the simple
 * policies? The paper concludes "a more complex control strategy
 * may not be warranted"; this bench quantifies the claim by pitting
 * a timeout policy, an EWMA-based adaptive predictor, and a
 * perfect-knowledge oracle against the paper's four policies on the
 * real benchmark idle distributions.
 *
 * Runs on api::SweepRunner with registry-named policies: the suite
 * is simulated once and both technology points replay each profile
 * through the multi-point engine (the Adaptive policy exercises its
 * sequential fallback path).
 *
 * Arguments: insts=<n> (default 500000), seed=<n>.
 */

#include <iostream>

#include "api/sweep.hh"
#include "args.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "energy/breakeven.hh"

int
main(int argc, char **argv)
{
    using namespace lsim;

    setInformEnabled(false);
    bench::Args opts(500'000);
    opts.parse(argc, argv);

    // "gradual" and "timeout" default to the breakeven-derived slice
    // count / timeout at each technology point, matching the legacy
    // hand-built controller set; "no-overhead" is the normalizer.
    api::SweepConfig cfg;
    cfg.insts = opts.insts;
    cfg.seed = opts.seed;
    cfg.technologies = {api::analysisPoint(0.05),
                        api::analysisPoint(0.5)};
    cfg.policies = {"max-sleep", "gradual",  "always-active",
                    "timeout",   "adaptive", "oracle",
                    "weighted-gradual", "no-overhead"};
    const auto sweep = api::SweepRunner(cfg).run();

    for (std::size_t t = 0; t < cfg.technologies.size(); ++t) {
        const auto &mp = cfg.technologies[t];
        const double be = energy::breakevenInterval(mp);

        std::cout << "Complex-control ablation, p = " << fixed(mp.p, 2)
                  << " (breakeven = " << fixed(be, 1)
                  << ")\nPer-benchmark energy relative to "
                     "NoOverhead:\n\n";
        Table table({"App", "MaxSleep", "GradualSleep",
                     "AlwaysActive", "Timeout", "Adaptive",
                     "Oracle", "WeightedGS"});
        double sums[7] = {};
        for (std::size_t w = 0; w < sweep.workloads.size(); ++w) {
            const auto &res = sweep.cell(w, t).policies;
            const double no = res[7].energy;
            std::vector<std::string> row{sweep.workloads[w]};
            for (int i = 0; i < 7; ++i) {
                row.push_back(fixed(res[i].energy / no, 3));
                sums[i] += res[i].energy / no;
            }
            table.addRow(row);
        }
        const auto n = static_cast<double>(sweep.workloads.size());
        std::vector<std::string> avg{"Average"};
        for (double s : sums)
            avg.push_back(fixed(s / n, 3));
        table.addRow(avg);
        table.print(std::cout);
        std::cout << "\nReading: if the Oracle's margin over the "
                     "best simple policy is small, the\npaper's "
                     "conclusion holds — complex control is not "
                     "warranted at this technology point.\n\n";
    }
    return 0;
}
