/**
 * @file
 * Ablation: does a more complex control strategy beat the simple
 * policies? The paper concludes "a more complex control strategy
 * may not be warranted"; this bench quantifies the claim by pitting
 * a timeout policy, an EWMA-based adaptive predictor, and a
 * perfect-knowledge oracle against the paper's four policies on the
 * real benchmark idle distributions.
 *
 * Arguments: insts=<n> (default 500000), seed=<n>.
 */

#include <iostream>
#include <memory>

#include "common/logging.hh"
#include "common/table.hh"
#include "energy/breakeven.hh"
#include "harness/benchmarks.hh"

int
main(int argc, char **argv)
{
    using namespace lsim;
    using namespace lsim::harness;

    setInformEnabled(false);
    SuiteOptions opts;
    opts.insts = 500'000;
    opts.parseArgs(argc, argv);

    const SuiteRun suite = runSuite(opts);

    for (double p : {0.05, 0.5}) {
        energy::ModelParams mp;
        mp.p = p;
        mp.alpha = 0.5;
        mp.k = 0.001;
        mp.s = 0.01;
        const double be = energy::breakevenInterval(mp);
        const auto timeout = static_cast<Cycle>(std::llround(be));

        std::cout << "Complex-control ablation, p = " << fixed(p, 2)
                  << " (breakeven = " << fixed(be, 1)
                  << ")\nPer-benchmark energy relative to "
                     "NoOverhead:\n\n";
        Table table({"App", "MaxSleep", "GradualSleep",
                     "AlwaysActive", "Timeout", "Adaptive",
                     "Oracle", "WeightedGS"});
        double sums[7] = {};
        for (const auto &ws : suite.sims) {
            sleep::ControllerSet set;
            set.push_back(
                std::make_unique<sleep::MaxSleepController>());
            set.push_back(
                std::make_unique<sleep::GradualSleepController>(
                    std::max<unsigned>(1, timeout)));
            set.push_back(
                std::make_unique<sleep::AlwaysActiveController>());
            set.push_back(
                std::make_unique<sleep::TimeoutController>(timeout));
            set.push_back(
                std::make_unique<sleep::AdaptiveController>(be));
            set.push_back(
                std::make_unique<sleep::OracleController>(be));
            set.push_back(std::make_unique<
                sleep::WeightedGradualSleepController>(
                sleep::WeightedGradualSleepController::
                    datapathWeights()));
            set.push_back(
                std::make_unique<sleep::NoOverheadController>());
            const auto res =
                evaluatePolicies(ws.idle, mp, std::move(set));
            const double no = res[7].energy;
            std::vector<std::string> row{ws.name};
            for (int i = 0; i < 7; ++i) {
                row.push_back(fixed(res[i].energy / no, 3));
                sums[i] += res[i].energy / no;
            }
            table.addRow(row);
        }
        const auto n = static_cast<double>(suite.sims.size());
        std::vector<std::string> avg{"Average"};
        for (double s : sums)
            avg.push_back(fixed(s / n, 3));
        table.addRow(avg);
        table.print(std::cout);
        std::cout << "\nReading: if the Oracle's margin over the "
                     "best simple policy is small, the\npaper's "
                     "conclusion holds — complex control is not "
                     "warranted at this technology point.\n\n";
    }
    return 0;
}
