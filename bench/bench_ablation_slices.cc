/**
 * @file
 * Ablation (beyond the paper's figures, supporting its Section 3.2
 * claim): sensitivity of GradualSleep to the slice count. "Using
 * fewer slices changes the curve to be more similar to the MaxSleep
 * behavior. Adding more slices results in a shift towards the
 * AlwaysActive behavior."
 *
 * Evaluated on the real benchmark idle-interval distributions at
 * p = 0.05 and p = 0.5, via api::SweepRunner: every slice count is a
 * registry policy ("gradual:<n>") in one sweep, so the suite is
 * simulated once and each profile is replayed at both technology
 * points in a single multi-point engine pass over all 12 policies.
 *
 * Arguments: insts=<n> (default 500000), seed=<n>.
 */

#include <iostream>

#include "api/sweep.hh"
#include "args.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "energy/breakeven.hh"

int
main(int argc, char **argv)
{
    using namespace lsim;

    setInformEnabled(false);
    bench::Args opts(500'000);
    opts.parse(argc, argv);

    const std::vector<unsigned> slice_counts = {1,  2,  4,   8,  16,
                                                32, 64, 128, 512};

    api::SweepConfig cfg;
    cfg.insts = opts.insts;
    cfg.seed = opts.seed;
    cfg.technologies = {api::analysisPoint(0.05),
                        api::analysisPoint(0.5)};
    for (unsigned slices : slice_counts)
        cfg.policies.push_back("gradual:" + std::to_string(slices));
    cfg.policies.push_back("max-sleep");
    cfg.policies.push_back("always-active");
    cfg.policies.push_back("no-overhead");
    const auto sweep = api::SweepRunner(cfg).run();

    const std::size_t ms = slice_counts.size();     // max-sleep
    const std::size_t aa = slice_counts.size() + 1; // always-active
    const std::size_t no = slice_counts.size() + 2; // no-overhead
    const auto n = static_cast<double>(sweep.workloads.size());

    for (std::size_t t = 0; t < cfg.technologies.size(); ++t) {
        const auto &mp = cfg.technologies[t];
        std::cout << "GradualSleep slice-count ablation, p = "
                  << fixed(mp.p, 2) << " (breakeven = "
                  << fixed(energy::breakevenInterval(mp), 1)
                  << " cycles)\nSuite-average energy relative to "
                     "NoOverhead:\n\n";

        Table table({"slices", "GradualSleep", "MaxSleep",
                     "AlwaysActive"});
        for (std::size_t s = 0; s < slice_counts.size(); ++s) {
            double gs_sum = 0.0, ms_sum = 0.0, aa_sum = 0.0;
            for (std::size_t w = 0; w < sweep.workloads.size();
                 ++w) {
                const auto &res = sweep.cell(w, t).policies;
                const double base = res[no].energy;
                gs_sum += res[s].energy / base;
                ms_sum += res[ms].energy / base;
                aa_sum += res[aa].energy / base;
            }
            table.addRow({std::to_string(slice_counts[s]),
                          fixed(gs_sum / n, 3), fixed(ms_sum / n, 3),
                          fixed(aa_sum / n, 3)});
        }
        table.print(std::cout);
        std::cout << "\nExpected: slices -> 1 converges to MaxSleep; "
                     "slices -> large converges to\nAlwaysActive; "
                     "the breakeven-sized design sits between the "
                     "extremes.\n\n";
    }
    return 0;
}
