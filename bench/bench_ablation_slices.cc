/**
 * @file
 * Ablation (beyond the paper's figures, supporting its Section 3.2
 * claim): sensitivity of GradualSleep to the slice count. "Using
 * fewer slices changes the curve to be more similar to the MaxSleep
 * behavior. Adding more slices results in a shift towards the
 * AlwaysActive behavior."
 *
 * Evaluated on the real benchmark idle-interval distributions at
 * p = 0.05 and p = 0.5.
 *
 * Arguments: insts=<n> (default 500000), seed=<n>.
 */

#include <iostream>
#include <memory>

#include "common/logging.hh"
#include "common/table.hh"
#include "energy/breakeven.hh"
#include "harness/benchmarks.hh"

int
main(int argc, char **argv)
{
    using namespace lsim;
    using namespace lsim::harness;

    setInformEnabled(false);
    SuiteOptions opts;
    opts.insts = 500'000;
    opts.parseArgs(argc, argv);

    const SuiteRun suite = runSuite(opts);

    for (double p : {0.05, 0.5}) {
        energy::ModelParams mp;
        mp.p = p;
        mp.alpha = 0.5;
        mp.k = 0.001;
        mp.s = 0.01;
        const double be = energy::breakevenInterval(mp);

        std::cout << "GradualSleep slice-count ablation, p = "
                  << fixed(p, 2) << " (breakeven = " << fixed(be, 1)
                  << " cycles)\nSuite-average energy relative to "
                     "NoOverhead:\n\n";

        Table table({"slices", "GradualSleep", "MaxSleep",
                     "AlwaysActive"});
        for (unsigned slices : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u,
                                512u}) {
            double gs = 0.0, ms = 0.0, aa = 0.0;
            for (const auto &ws : suite.sims) {
                sleep::ControllerSet set;
                set.push_back(
                    std::make_unique<sleep::GradualSleepController>(
                        slices));
                set.push_back(
                    std::make_unique<sleep::MaxSleepController>());
                set.push_back(
                    std::make_unique<sleep::AlwaysActiveController>());
                set.push_back(
                    std::make_unique<sleep::NoOverheadController>());
                auto res = evaluatePolicies(ws.idle, mp,
                                            std::move(set));
                const double no = res[3].energy;
                gs += res[0].energy / no;
                ms += res[1].energy / no;
                aa += res[2].energy / no;
            }
            const auto n = static_cast<double>(suite.sims.size());
            table.addRow({std::to_string(slices), fixed(gs / n, 3),
                          fixed(ms / n, 3), fixed(aa / n, 3)});
        }
        table.print(std::cout);
        std::cout << "\nExpected: slices -> 1 converges to MaxSleep; "
                     "slices -> large converges to\nAlwaysActive; "
                     "the breakeven-sized design sits between the "
                     "extremes.\n\n";
    }
    return 0;
}
