/**
 * @file
 * google-benchmark microbenchmarks: throughput of the simulator's
 * hot components (trace generation, cache accesses, branch
 * prediction, controller accounting, whole-core simulation).
 */

#include <benchmark/benchmark.h>

#include "cache/hierarchy.hh"
#include "common/logging.hh"
#include "cpu/bpred.hh"
#include "cpu/core.hh"
#include "energy/model.hh"
#include "sleep/controllers.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"

namespace
{

using namespace lsim;

void
BM_TraceGeneration(benchmark::State &state)
{
    trace::TraceGenerator gen(trace::profileByName("gzip"), 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void
BM_CacheHit(benchmark::State &state)
{
    cache::MemoryHierarchy mem;
    (void)mem.data(0x1000, false);
    for (auto _ : state)
        benchmark::DoNotOptimize(mem.data(0x1000, false));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHit);

void
BM_CacheMissStream(benchmark::State &state)
{
    cache::MemoryHierarchy mem;
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.data(addr, false));
        addr += 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheMissStream);

void
BM_BranchPrediction(benchmark::State &state)
{
    cpu::BranchPredictor bp{cpu::BpredConfig{}};
    trace::MicroOp op;
    op.cls = trace::OpClass::Branch;
    op.pc = 0x1000;
    std::uint64_t i = 0;
    for (auto _ : state) {
        op.taken = (++i & 3) == 0;
        benchmark::DoNotOptimize(bp.predict(op));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPrediction);

void
BM_ControllerAccounting(benchmark::State &state)
{
    sleep::GradualSleepController ctrl(20);
    Cycle len = 1;
    for (auto _ : state) {
        ctrl.activeRun(3);
        ctrl.idleRun(len);
        len = len % 50 + 1;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ControllerAccounting);

void
BM_EnergyEvaluation(benchmark::State &state)
{
    energy::ModelParams mp;
    const energy::EnergyModel model(mp);
    energy::CycleCounts cc;
    cc.active = 1000;
    cc.unctrl_idle = 200;
    cc.sleep = 500;
    cc.transitions = 40;
    for (auto _ : state)
        benchmark::DoNotOptimize(model.normalizedEnergy(cc));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnergyEvaluation);

void
BM_CoreSimulation(benchmark::State &state)
{
    setInformEnabled(false);
    const auto &profile = trace::profileByName(
        state.range(0) == 0 ? "gzip" : "mcf");
    for (auto _ : state) {
        trace::TraceGenerator gen(profile, 1);
        cpu::O3Core core(cpu::CoreConfig{}, gen);
        const auto res = core.run(50000);
        benchmark::DoNotOptimize(res.ipc);
        state.SetItemsProcessed(50000);
    }
}
BENCHMARK(BM_CoreSimulation)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
