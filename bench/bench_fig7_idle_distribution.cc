/**
 * @file
 * Reproduces Figure 7: the distribution of integer-ALU idle
 * intervals across the benchmark suite, as the fraction of total
 * time the ALUs are idle in intervals of each power-of-two length
 * (8192-cycle clamp), at L2 access latencies of 12 and 32 cycles.
 *
 * Runs on api::BatchRunner: the two L2 configurations are submitted
 * as one batch, so all 18 timing simulations share a single thread
 * pool (the configs differ in L2 latency, so nothing dedupes — the
 * batch is pure fan-out here).
 *
 * Arguments: insts=<n> (default 1000000), seed=<n>.
 */

#include <iostream>

#include "api/batch.hh"
#include "args.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "harness/benchmarks.hh"

int
main(int argc, char **argv)
{
    using namespace lsim;
    using namespace lsim::harness;

    setInformEnabled(false);
    bench::Args opts(1'000'000);
    opts.parse(argc, argv);

    std::cout << "Figure 7: distribution of idle intervals "
                 "(fraction of total FU time per bucket)\n\n";

    api::SweepConfig cfg12;
    cfg12.insts = opts.insts;
    cfg12.seed = opts.seed;
    // Phase 2 is irrelevant here — Figure 7 only needs the phase-1
    // idle statistics — so evaluate a single technology point.
    cfg12.technologies = {api::analysisPoint(0.05)};

    api::SweepConfig cfg32 = cfg12;
    cfg32.base = cpu::CoreConfig{}.withL2Latency(32);

    api::BatchConfig batch;
    batch.sweeps = {cfg12, cfg32};
    const auto result = api::BatchRunner(batch).run();

    // The SuiteRun aggregation helpers (equal-weight per-benchmark
    // combination) apply unchanged to the facade's simulations.
    SuiteRun run12, run32;
    run12.sims = result.sweeps[0].sims;
    run32.sims = result.sweeps[1].sims;
    const auto h12 = run12.combinedIdleHistogram();
    const auto h32 = run32.combinedIdleHistogram();

    Table table({"Interval (cyc)", "12-cycle L2", "32-cycle L2"});
    for (std::size_t b = 0; b < h12.numBuckets(); ++b) {
        std::string label = std::to_string(h12.bucketLow(b));
        if (b + 1 == h12.numBuckets())
            label = ">=" + label;
        table.addRow({label, fixed(h12.bucketWeight(b), 4),
                      fixed(h32.bucketWeight(b), 4)});
    }
    table.print(std::cout);

    std::cout << "\nTotal idle fraction: 12-cycle L2 = "
              << fixed(run12.meanIdleFraction(), 3)
              << "  (paper: 0.468), 32-cycle L2 = "
              << fixed(run32.meanIdleFraction(), 3) << "\n";

    // Fraction of idle time in intervals within the L2 latency.
    double within = 0.0, total = 0.0;
    for (std::size_t b = 0; b < h12.numBuckets(); ++b) {
        total += h12.bucketWeight(b);
        if (h12.bucketLow(b) < 16)
            within += h12.bucketWeight(b);
    }
    std::cout << "Idle time in intervals < 16 cycles (12-cycle L2): "
              << fixed(100.0 * within / total, 1)
              << "% (paper: ~75% within the L2 latency)\n"
              << "Expected shape: short intervals dominate; "
                 "intervals beyond 128 cycles are rare;\nthe slower "
                 "L2 shifts idle time toward longer intervals.\n";
    return 0;
}
