/**
 * @file
 * Reproduces Figure 4a: breakeven idle interval versus the leakage
 * factor p for activity factors 0.1 / 0.5 / 0.9 (k = 0.001,
 * E_sleepOH = 0.01 E_D).
 */

#include <iostream>

#include "api/experiment.hh"
#include "common/table.hh"
#include "energy/breakeven.hh"

int
main()
{
    using namespace lsim;
    using namespace lsim::energy;

    std::cout << "Figure 4a: breakeven idle interval (cycles) vs "
                 "leakage factor p\n\n";

    Table table({"p", "alpha=0.1", "alpha=0.5", "alpha=0.9"});
    for (int step = 1; step <= 40; ++step) {
        const double p = step * 0.025;
        std::vector<std::string> row{fixed(p, 3)};
        for (double alpha : {0.1, 0.5, 0.9})
            row.push_back(fixed(
                breakevenInterval(api::analysisPoint(p, alpha)), 2));
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\nNear-term technology point p=0.05: breakeven "
                 "~20 cycles; decreases ~1/p\n"
                 "(paper: the alpha=0.1 and alpha=0.9 curves are "
                 "almost identical at this scale).\n";
    return 0;
}
