/**
 * @file
 * lsim command-line driver: the library's functionality behind one
 * binary for scripted use.
 *
 *   lsim characterize                 print the OR8/FU circuit data
 *   lsim breakeven [p] [alpha]        breakeven interval at a point
 *   lsim simulate <bench> [insts] [fus] [--json]
 *                                     run the timing model
 *   lsim policies <bench> <p> [insts] [--json]
 *                                     simulate + evaluate policies
 *   lsim list                         list available benchmarks
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "circuit/fu_circuit.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "energy/breakeven.hh"
#include "harness/report.hh"
#include "trace/profile.hh"

namespace
{

using namespace lsim;

int
usage()
{
    std::cerr
        << "usage:\n"
           "  lsim characterize\n"
           "  lsim breakeven [p] [alpha]\n"
           "  lsim simulate <bench> [insts] [fus] [--json]\n"
           "  lsim policies <bench> <p> [insts] [--json]\n"
           "  lsim list\n";
    return 2;
}

bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

int
cmdCharacterize()
{
    const circuit::Technology tech;
    circuit::FunctionalUnitCircuit fu(tech);
    Table t({"quantity", "value"});
    const auto c = fu.gate().characterize();
    t.addRow({"gate style", to_string(c.style)});
    t.addRow({"eval delay", fixed(c.eval_delay_ps, 1) + " ps"});
    t.addRow({"sleep delay", fixed(c.sleep_delay_ps, 1) + " ps"});
    t.addRow({"gate dynamic energy", fixed(c.dynamic_fj, 1) + " fJ"});
    t.addRow({"gate HI leakage/cycle", sci(c.leak_hi_fj, 2) + " fJ"});
    t.addRow({"gate LO leakage/cycle", sci(c.leak_lo_fj, 2) + " fJ"});
    t.addRow({"FU gates", std::to_string(fu.numGates())});
    t.addRow({"FU dynamic energy",
              fixed(fu.dynamicEnergy() / 1000, 2) + " pJ"});
    t.addRow({"FU breakeven (alpha=0.5)",
              std::to_string(fu.breakevenInterval(0.5)) + " cycles"});
    const auto mp = energy::ModelParams::fromCircuit(fu);
    t.addRow({"leakage factor p", fixed(mp.p, 4)});
    t.addRow({"sleep ratio k", sci(mp.k, 2)});
    t.addRow({"sleep overhead s", fixed(mp.s, 4)});
    t.print(std::cout);
    return 0;
}

int
cmdBreakeven(int argc, char **argv)
{
    energy::ModelParams mp;
    mp.p = argc > 2 ? std::atof(argv[2]) : 0.05;
    mp.alpha = argc > 3 ? std::atof(argv[3]) : 0.5;
    mp.k = 0.001;
    mp.s = 0.01;
    std::cout << "breakeven interval at p=" << mp.p << " alpha="
              << mp.alpha << ": "
              << energy::breakevenInterval(mp) << " cycles\n";
    return 0;
}

int
cmdList()
{
    Table t({"benchmark", "suite", "paper IPC", "paper FUs"});
    for (const auto &p : trace::table3Profiles())
        t.addRow({p.name, p.suite, fixed(p.paper_ipc, 3),
                  std::to_string(p.paper_fus)});
    t.print(std::cout);
    return 0;
}

int
cmdSimulate(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const auto &profile = trace::profileByName(argv[2]);
    const std::uint64_t insts =
        argc > 3 && argv[3][0] != '-' ? std::strtoull(argv[3], nullptr, 0)
                                      : 500000;
    const unsigned fus =
        argc > 4 && argv[4][0] != '-'
            ? static_cast<unsigned>(std::atoi(argv[4]))
            : profile.paper_fus;
    const auto ws = harness::simulateWorkload(profile, fus, insts);

    if (hasFlag(argc, argv, "--json")) {
        JsonWriter w(std::cout);
        w.beginObject();
        harness::writeSimJson(w, ws);
        w.endObject();
        std::cout << "\n";
        return 0;
    }
    Table t({"metric", "value"});
    t.addRow({"IPC", fixed(ws.sim.ipc, 3)});
    t.addRow({"cycles", std::to_string(ws.sim.cycles)});
    t.addRow({"branch mispredict",
              fixed(100 * ws.sim.bpred.dirMispredictRate(), 2) + "%"});
    t.addRow({"L1D miss",
              fixed(100 * ws.sim.l1d.missRate(), 2) + "%"});
    t.addRow({"L2 miss", fixed(100 * ws.sim.l2.missRate(), 2) + "%"});
    t.addRow({"FU idle fraction",
              fixed(ws.idle.idleFraction(), 3)});
    t.addRow({"mean idle interval",
              fixed(ws.idle.meanInterval(), 1) + " cycles"});
    t.print(std::cout);
    return 0;
}

int
cmdPolicies(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    const auto &profile = trace::profileByName(argv[2]);
    energy::ModelParams mp;
    mp.p = std::atof(argv[3]);
    mp.alpha = 0.5;
    mp.k = 0.001;
    mp.s = 0.01;
    const std::uint64_t insts =
        argc > 4 && argv[4][0] != '-' ? std::strtoull(argv[4], nullptr, 0)
                                      : 500000;
    const auto ws = harness::simulateWorkload(
        profile, profile.paper_fus, insts);
    const auto res = harness::evaluatePaperPolicies(ws.idle, mp);

    if (hasFlag(argc, argv, "--json")) {
        harness::writeExperimentJson(std::cout, ws, mp, res);
        return 0;
    }
    Table t({"policy", "energy (E_A)", "vs 100% compute",
             "leakage share"});
    for (const auto &r : res)
        t.addRow({r.name, fixed(r.energy, 1),
                  fixed(r.relative_to_base, 3),
                  fixed(r.leakage_fraction, 3)});
    t.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "characterize")
        return cmdCharacterize();
    if (cmd == "breakeven")
        return cmdBreakeven(argc, argv);
    if (cmd == "simulate")
        return cmdSimulate(argc, argv);
    if (cmd == "policies")
        return cmdPolicies(argc, argv);
    if (cmd == "list")
        return cmdList();
    return usage();
}
