/**
 * @file
 * lsim command-line driver: the library's functionality behind one
 * binary for scripted use, built on the api:: experiment facade.
 *
 * Subcommands take GNU-style --flags (see `lsim --help` and
 * `lsim <command> --help`); the historical positional forms
 * (`lsim simulate gcc 500000 2`, `lsim policies gcc 0.05`,
 * `lsim breakeven 0.1 0.5`) keep working. Numeric arguments are
 * parsed strictly: malformed values are an error, never silently 0.
 */

#include <cstdint>
#include <cstring>
#include <limits>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/experiment.hh"
#include "api/sweep.hh"
#include "circuit/fu_circuit.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "energy/breakeven.hh"
#include "harness/report.hh"
#include "sleep/policy_registry.hh"
#include "trace/profile.hh"

namespace
{

using namespace lsim;

constexpr const char *kVersion = "lsim 1.0.0";

// --------------------------------------------------------- flag parser

/** Declarative description of one flag a command accepts. */
struct FlagSpec
{
    const char *name;       ///< without the leading "--"
    const char *value_name; ///< nullptr for boolean flags
    const char *help;
};

/** Declarative description of one subcommand (drives usage()). */
struct CommandSpec
{
    const char *name;
    const char *positionals;    ///< e.g. "<bench> <p> [insts]"
    std::size_t max_positionals; ///< operands beyond this are errors
    const char *help;
    std::vector<FlagSpec> flags;
};

/** Exit-worthy user error: print, show usage hint, exit 2. */
[[noreturn]] void
die(const std::string &message)
{
    std::cerr << "lsim: " << message << "\n"
              << "run 'lsim --help' for usage\n";
    std::exit(2);
}

std::uint64_t
parseU64(const std::string &text, const std::string &what)
{
    // stoull accepts a leading '-' (wrapping around); require digits.
    if (text.empty() || text[0] < '0' || text[0] > '9')
        die("bad " + what + " '" + text +
            "': expected a non-negative integer");
    std::size_t pos = 0;
    unsigned long long v = 0;
    try {
        v = std::stoull(text, &pos, 0);
    } catch (const std::exception &) {
        die("bad " + what + " '" + text +
            "': expected a non-negative integer");
    }
    if (pos != text.size())
        die("bad " + what + " '" + text +
            "': expected a non-negative integer");
    return v;
}

double
parseDouble(const std::string &text, const std::string &what)
{
    std::size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(text, &pos);
    } catch (const std::exception &) {
        die("bad " + what + " '" + text + "': expected a number");
    }
    if (pos != text.size())
        die("bad " + what + " '" + text + "': expected a number");
    return v;
}

/** parseU64 restricted to values that fit in `unsigned`. */
unsigned
parseU32(const std::string &text, const std::string &what)
{
    const auto v = parseU64(text, what);
    if (v > std::numeric_limits<unsigned>::max())
        die("bad " + what + " '" + text + "': value too large");
    return static_cast<unsigned>(v);
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::stringstream ss(text);
    std::string cell;
    while (std::getline(ss, cell, ','))
        if (!cell.empty())
            out.push_back(cell);
    return out;
}

/** Parsed command line: positional operands + flag values. */
class Args
{
  public:
    Args(int argc, char **argv, const CommandSpec &spec)
        : spec_(spec)
    {
        for (int i = 0; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--", 0) != 0) {
                positionals_.push_back(arg);
                continue;
            }
            const auto eq = arg.find('=');
            const std::string name = arg.substr(2, eq - 2);
            const FlagSpec *flag = find(name);
            if (!flag)
                die("unknown flag '--" + name + "' for '" +
                    spec.name + "'");
            if (!flag->value_name) {
                if (eq != std::string::npos)
                    die("flag '--" + name + "' takes no value");
                flags_[name] = "";
            } else if (eq != std::string::npos) {
                if (eq + 1 == arg.size())
                    die("flag '--" + name + "' needs a value");
                flags_[name] = arg.substr(eq + 1);
            } else {
                if (i + 1 >= argc)
                    die("flag '--" + name + "' needs a value");
                flags_[name] = argv[++i];
            }
        }
        if (positionals_.size() > spec.max_positionals)
            die(std::string("'") + spec.name +
                "' takes at most " +
                std::to_string(spec.max_positionals) +
                " operand(s); unexpected '" +
                positionals_[spec.max_positionals] + "'");
    }

    bool has(const std::string &name) const
    {
        return flags_.count(name) > 0;
    }

    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

    /** Positional @p index, or empty when absent. */
    std::string positional(std::size_t index) const
    {
        return index < positionals_.size() ? positionals_[index] : "";
    }

    /** Flag value, falling back to positional @p pos_index. */
    std::string
    flagOrPositional(const std::string &name,
                     std::size_t pos_index) const
    {
        const auto it = flags_.find(name);
        if (it != flags_.end())
            return it->second;
        return positional(pos_index);
    }

    std::optional<std::uint64_t>
    u64(const std::string &name, std::size_t pos_index) const
    {
        const std::string text = flagOrPositional(name, pos_index);
        if (text.empty())
            return std::nullopt;
        return parseU64(text, "--" + name);
    }

    std::optional<double>
    number(const std::string &name, std::size_t pos_index) const
    {
        const std::string text = flagOrPositional(name, pos_index);
        if (text.empty())
            return std::nullopt;
        return parseDouble(text, "--" + name);
    }

  private:
    const FlagSpec *find(const std::string &name) const
    {
        for (const auto &f : spec_.flags)
            if (name == f.name)
                return &f;
        return nullptr;
    }

    const CommandSpec &spec_;
    std::vector<std::string> positionals_;
    std::map<std::string, std::string> flags_;
};

// ------------------------------------------------------ command specs

const FlagSpec kHelpFlag = {"help", nullptr, "show this help"};

const std::vector<CommandSpec> &
commands()
{
    static const std::vector<CommandSpec> specs = {
        {"characterize", "", 0, "print the OR8/FU circuit data",
         {kHelpFlag}},
        {"breakeven", "[p] [alpha]", 2,
         "breakeven interval at a technology point",
         {{"p", "X", "leakage factor (default 0.05)"},
          {"alpha", "A", "activity factor (default 0.5)"},
          kHelpFlag}},
        {"simulate", "<bench> [insts] [fus]", 3,
         "run the timing model",
         {{"insts", "N", "committed instructions (default 500000)"},
          {"fus", "N", "integer FU count, or 'auto' (default: paper)"},
          {"seed", "N", "trace generator seed (default 1)"},
          {"json", nullptr, "emit JSON instead of a table"},
          kHelpFlag}},
        {"policies", "<bench> <p> [insts]", 3,
         "simulate, then evaluate sleep policies",
         {{"insts", "N", "committed instructions (default 500000)"},
          {"policies", "a,b,...",
           "policy specs (default: the paper's four)"},
          {"fus", "N", "integer FU count, or 'auto' (default: paper)"},
          {"seed", "N", "trace generator seed (default 1)"},
          {"alpha", "A", "activity factor (default 0.5)"},
          {"json", nullptr, "emit JSON instead of a table"},
          {"csv", nullptr, "emit CSV instead of a table"},
          kHelpFlag}},
        {"sweep", "", 0,
         "parallel technology sweep over a workload grid",
         {{"benchmarks", "a,b,...",
           "workloads (default: full Table 3 suite)"},
          {"policies", "a,b,...",
           "policy specs (default: the paper's four)"},
          {"p-min", "X", "lowest leakage factor (default 0.05)"},
          {"p-max", "X", "highest leakage factor (default 1.0)"},
          {"steps", "N", "technology points (default 20)"},
          {"alpha", "A", "activity factor (default 0.5)"},
          {"insts", "N", "committed instructions (default 500000)"},
          {"seed", "N", "trace generator seed (default 1)"},
          {"threads", "N", "worker threads (default: hardware)"},
          {"json", nullptr, "emit JSON instead of a table"},
          {"csv", nullptr, "emit CSV instead of a table"},
          kHelpFlag}},
        {"list", "", 0, "list benchmarks (or policies)",
         {{"policies", nullptr, "list registered policy specs"},
          kHelpFlag}},
    };
    return specs;
}

void
printUsage(std::ostream &os)
{
    os << "usage: lsim [--help] [--version] <command> [args]\n\n"
          "commands:\n";
    for (const auto &cmd : commands()) {
        std::string head = std::string("  ") + cmd.name;
        if (*cmd.positionals)
            head += std::string(" ") + cmd.positionals;
        os << head
           << std::string(
                  head.size() < 26 ? 26 - head.size() : 1, ' ')
           << cmd.help << "\n";
    }
    os << "\nrun 'lsim <command> --help' for that command's flags\n";
}

void
printCommandHelp(const CommandSpec &spec)
{
    std::cout << "usage: lsim " << spec.name;
    if (*spec.positionals)
        std::cout << " " << spec.positionals;
    std::cout << " [flags]\n  " << spec.help << "\n\nflags:\n";
    for (const auto &f : spec.flags) {
        std::string head = std::string("  --") + f.name;
        if (f.value_name)
            head += std::string(" <") + f.value_name + ">";
        head += std::string(
            head.size() < 24 ? 24 - head.size() : 1, ' ');
        std::cout << head << f.help << "\n";
    }
}

// ---------------------------------------------------------- commands

/** Shared simulate/policies builder setup from parsed args. */
api::ExperimentBuilder
builderFor(const Args &args, const std::string &bench,
           std::size_t insts_pos, std::size_t fus_pos)
{
    auto builder = api::Experiment::builder().workload(bench);
    if (const auto insts = args.u64("insts", insts_pos))
        builder.insts(*insts);
    if (const auto seed = args.u64("seed", ~std::size_t{0}))
        builder.seed(*seed);
    const std::string fus = args.flagOrPositional("fus", fus_pos);
    if (fus == "auto")
        builder.fus(api::auto_select);
    else if (!fus.empty()) {
        const auto n = parseU32(fus, "--fus");
        if (n == 0)
            die("bad --fus '0': expected a positive count or 'auto'");
        builder.fus(n);
    }
    return builder;
}

int
cmdCharacterize()
{
    const circuit::Technology tech;
    circuit::FunctionalUnitCircuit fu(tech);
    Table t({"quantity", "value"});
    const auto c = fu.gate().characterize();
    t.addRow({"gate style", to_string(c.style)});
    t.addRow({"eval delay", fixed(c.eval_delay_ps, 1) + " ps"});
    t.addRow({"sleep delay", fixed(c.sleep_delay_ps, 1) + " ps"});
    t.addRow({"gate dynamic energy", fixed(c.dynamic_fj, 1) + " fJ"});
    t.addRow({"gate HI leakage/cycle", sci(c.leak_hi_fj, 2) + " fJ"});
    t.addRow({"gate LO leakage/cycle", sci(c.leak_lo_fj, 2) + " fJ"});
    t.addRow({"FU gates", std::to_string(fu.numGates())});
    t.addRow({"FU dynamic energy",
              fixed(fu.dynamicEnergy() / 1000, 2) + " pJ"});
    t.addRow({"FU breakeven (alpha=0.5)",
              std::to_string(fu.breakevenInterval(0.5)) + " cycles"});
    const auto mp = energy::ModelParams::fromCircuit(fu);
    t.addRow({"leakage factor p", fixed(mp.p, 4)});
    t.addRow({"sleep ratio k", sci(mp.k, 2)});
    t.addRow({"sleep overhead s", fixed(mp.s, 4)});
    t.print(std::cout);
    return 0;
}

int
cmdBreakeven(const Args &args)
{
    const auto mp =
        api::analysisPoint(args.number("p", 0).value_or(0.05),
                           args.number("alpha", 1).value_or(0.5));
    std::cout << "breakeven interval at p=" << mp.p << " alpha="
              << mp.alpha << ": "
              << energy::breakevenInterval(mp) << " cycles\n";
    return 0;
}

int
cmdList(const Args &args)
{
    if (args.has("policies")) {
        const auto &reg = sleep::PolicyRegistry::instance();
        Table t({"policy", "description"});
        for (const auto &key : reg.keys())
            t.addRow({key, reg.summary(key)});
        t.print(std::cout);
        return 0;
    }
    Table t({"benchmark", "suite", "paper IPC", "paper FUs"});
    for (const auto &p : trace::table3Profiles())
        t.addRow({p.name, p.suite, fixed(p.paper_ipc, 3),
                  std::to_string(p.paper_fus)});
    t.print(std::cout);
    return 0;
}

int
cmdSimulate(const Args &args)
{
    const std::string bench = args.positional(0);
    if (bench.empty())
        die("simulate: missing <bench> (see 'lsim list')");
    const auto ws =
        builderFor(args, bench, 1, 2).session().sim();

    if (args.has("json")) {
        JsonWriter w(std::cout);
        w.beginObject();
        harness::writeSimJson(w, ws);
        w.endObject();
        std::cout << "\n";
        return 0;
    }
    Table t({"metric", "value"});
    t.addRow({"IPC", fixed(ws.sim.ipc, 3)});
    t.addRow({"cycles", std::to_string(ws.sim.cycles)});
    t.addRow({"branch mispredict",
              fixed(100 * ws.sim.bpred.dirMispredictRate(), 2) + "%"});
    t.addRow({"L1D miss",
              fixed(100 * ws.sim.l1d.missRate(), 2) + "%"});
    t.addRow({"L2 miss", fixed(100 * ws.sim.l2.missRate(), 2) + "%"});
    t.addRow({"FU idle fraction",
              fixed(ws.idle.idleFraction(), 3)});
    t.addRow({"mean idle interval",
              fixed(ws.idle.meanInterval(), 1) + " cycles"});
    t.print(std::cout);
    return 0;
}

int
cmdPolicies(const Args &args)
{
    const std::string bench = args.positional(0);
    if (bench.empty())
        die("policies: missing <bench> (see 'lsim list')");
    const std::string p_text = args.positional(1);
    if (p_text.empty())
        die("policies: missing <p> (leakage factor, e.g. 0.05)");
    const double p = parseDouble(p_text, "<p>");
    const double alpha =
        args.number("alpha", ~std::size_t{0}).value_or(0.5);

    auto builder =
        builderFor(args, bench, 2, ~std::size_t{0})
            .technology(p, alpha);
    if (args.has("policies"))
        builder.policies(
            splitList(args.flagOrPositional("policies", ~std::size_t{0})));
    const auto result = builder.run();

    if (args.has("json")) {
        result.writeJson(std::cout);
        return 0;
    }
    if (args.has("csv")) {
        result.writeCsv(std::cout);
        return 0;
    }
    Table t({"policy", "energy (E_A)", "vs 100% compute",
             "leakage share"});
    for (const auto &r : result.policies)
        t.addRow({r.name, fixed(r.energy, 1),
                  fixed(r.relative_to_base, 3),
                  fixed(r.leakage_fraction, 3)});
    t.print(std::cout);
    return 0;
}

int
cmdSweep(const Args &args)
{
    api::SweepConfig cfg;
    if (args.has("benchmarks"))
        cfg.workloads =
            splitList(args.flagOrPositional("benchmarks", ~std::size_t{0}));
    if (args.has("policies"))
        cfg.policies =
            splitList(args.flagOrPositional("policies", ~std::size_t{0}));
    const double p_min =
        args.number("p-min", ~std::size_t{0}).value_or(0.05);
    const double p_max =
        args.number("p-max", ~std::size_t{0}).value_or(1.0);
    const std::string steps_text =
        args.flagOrPositional("steps", ~std::size_t{0});
    const unsigned steps =
        steps_text.empty() ? 20 : parseU32(steps_text, "--steps");
    const double alpha =
        args.number("alpha", ~std::size_t{0}).value_or(0.5);
    cfg.technologies = api::pSweep(p_min, p_max, steps, alpha);
    cfg.insts = args.u64("insts", ~std::size_t{0}).value_or(500'000);
    cfg.seed = args.u64("seed", ~std::size_t{0}).value_or(1);
    const std::string threads_text =
        args.flagOrPositional("threads", ~std::size_t{0});
    cfg.threads =
        threads_text.empty() ? 0 : parseU32(threads_text, "--threads");

    const auto result = api::SweepRunner(cfg).run();

    if (args.has("json")) {
        result.writeJson(std::cout);
        return 0;
    }
    if (args.has("csv")) {
        result.writeCsv(std::cout);
        return 0;
    }
    std::vector<std::string> headers = {"p"};
    for (const auto &key : result.policy_keys)
        headers.push_back(key);
    Table t(headers);
    for (std::size_t ti = 0; ti < result.technologies.size(); ++ti) {
        std::vector<std::string> row = {
            fixed(result.technologies[ti].p, 3)};
        // Mean energy relative to the 100%-activity baseline across
        // the workload grid (works for any policy set).
        std::vector<double> mean(result.policy_keys.size(), 0.0);
        for (std::size_t w = 0; w < result.workloads.size(); ++w) {
            const auto &cell = result.cell(w, ti);
            for (std::size_t i = 0; i < mean.size(); ++i)
                mean[i] += cell.policies[i].relative_to_base;
        }
        for (double m : mean)
            row.push_back(fixed(
                m / static_cast<double>(result.workloads.size()), 3));
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "\n(mean energy relative to 100% compute across "
              << result.workloads.size() << " workload(s); use "
                 "--csv/--json for per-benchmark data)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    if (argc < 2) {
        printUsage(std::cerr);
        return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
        printUsage(std::cout);
        return 0;
    }
    if (cmd == "--version" || cmd == "version") {
        std::cout << kVersion << "\n";
        return 0;
    }

    const CommandSpec *spec = nullptr;
    for (const auto &c : commands())
        if (cmd == c.name)
            spec = &c;
    if (!spec)
        die("unknown command '" + cmd + "'");

    const Args args(argc - 2, argv + 2, *spec);
    if (args.has("help")) {
        printCommandHelp(*spec);
        return 0;
    }

    try {
        if (cmd == "characterize")
            return cmdCharacterize();
        if (cmd == "breakeven")
            return cmdBreakeven(args);
        if (cmd == "simulate")
            return cmdSimulate(args);
        if (cmd == "policies")
            return cmdPolicies(args);
        if (cmd == "sweep")
            return cmdSweep(args);
        if (cmd == "list")
            return cmdList(args);
    } catch (const std::invalid_argument &err) {
        die(err.what());
    }
    die("unknown command '" + cmd + "'");
}
