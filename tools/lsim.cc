/**
 * @file
 * lsim command-line driver: the library's functionality behind one
 * binary for scripted use, built on the api:: experiment facade.
 *
 * Subcommands take GNU-style --flags (see `lsim --help` and
 * `lsim <command> --help`); the historical positional forms
 * (`lsim simulate gcc 500000 2`, `lsim policies gcc 0.05`,
 * `lsim breakeven 0.1 0.5`) keep working. Numeric arguments are
 * parsed strictly: malformed values are an error, never silently 0.
 */

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/batch.hh"
#include "api/experiment.hh"
#include "api/sweep.hh"
#include "circuit/fu_circuit.hh"
#include "common/fault.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "energy/breakeven.hh"
#include "harness/report.hh"
#include "obs/trace.hh"
#include "serve/daemon.hh"
#include "serve/socket.hh"
#include "serve/spec.hh"
#include "sleep/policy_registry.hh"
#include "store/profile_store.hh"
#include "trace/profile.hh"
#include "trace/profile_json.hh"

namespace
{

using namespace lsim;

constexpr const char *kVersion = "lsim 1.0.0";

// --------------------------------------------------------- flag parser

/** Declarative description of one flag a command accepts. */
struct FlagSpec
{
    const char *name;       ///< without the leading "--"
    const char *value_name; ///< nullptr for boolean flags
    const char *help;
};

/** Declarative description of one subcommand (drives usage()). */
struct CommandSpec
{
    const char *name;
    const char *positionals;    ///< e.g. "<bench> <p> [insts]"
    std::size_t max_positionals; ///< operands beyond this are errors
    const char *help;
    std::vector<FlagSpec> flags;
    const char *epilog = nullptr; ///< extra --help text (exit codes)
};

/** Exit-worthy user error: print, show usage hint, exit 2. */
[[noreturn]] void
die(const std::string &message)
{
    std::cerr << "lsim: " << message << "\n"
              << "run 'lsim --help' for usage\n";
    std::exit(2);
}

std::uint64_t
parseU64(const std::string &text, const std::string &what)
{
    // stoull accepts a leading '-' (wrapping around); require digits.
    if (text.empty() || text[0] < '0' || text[0] > '9')
        die("bad " + what + " '" + text +
            "': expected a non-negative integer");
    std::size_t pos = 0;
    unsigned long long v = 0;
    try {
        v = std::stoull(text, &pos, 0);
    } catch (const std::exception &) {
        die("bad " + what + " '" + text +
            "': expected a non-negative integer");
    }
    if (pos != text.size())
        die("bad " + what + " '" + text +
            "': expected a non-negative integer");
    return v;
}

double
parseDouble(const std::string &text, const std::string &what)
{
    std::size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(text, &pos);
    } catch (const std::exception &) {
        die("bad " + what + " '" + text + "': expected a number");
    }
    if (pos != text.size())
        die("bad " + what + " '" + text + "': expected a number");
    return v;
}

/** parseU64 restricted to values that fit in `unsigned`. */
unsigned
parseU32(const std::string &text, const std::string &what)
{
    const auto v = parseU64(text, what);
    if (v > std::numeric_limits<unsigned>::max())
        die("bad " + what + " '" + text + "': value too large");
    return static_cast<unsigned>(v);
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::stringstream ss(text);
    std::string cell;
    while (std::getline(ss, cell, ','))
        if (!cell.empty())
            out.push_back(cell);
    return out;
}

/** Parsed command line: positional operands + flag values. */
class Args
{
  public:
    Args(int argc, char **argv, const CommandSpec &spec)
        : spec_(spec)
    {
        for (int i = 0; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--", 0) != 0) {
                positionals_.push_back(arg);
                continue;
            }
            const auto eq = arg.find('=');
            const std::string name = arg.substr(2, eq - 2);
            const FlagSpec *flag = find(name);
            if (!flag)
                die("unknown flag '--" + name + "' for '" +
                    spec.name + "'");
            if (!flag->value_name) {
                if (eq != std::string::npos)
                    die("flag '--" + name + "' takes no value");
                flags_[name] = "";
            } else if (eq != std::string::npos) {
                if (eq + 1 == arg.size())
                    die("flag '--" + name + "' needs a value");
                flags_[name] = arg.substr(eq + 1);
            } else {
                if (i + 1 >= argc)
                    die("flag '--" + name + "' needs a value");
                flags_[name] = argv[++i];
            }
        }
        if (positionals_.size() > spec.max_positionals)
            die(std::string("'") + spec.name +
                "' takes at most " +
                std::to_string(spec.max_positionals) +
                " operand(s); unexpected '" +
                positionals_[spec.max_positionals] + "'");
    }

    bool has(const std::string &name) const
    {
        return flags_.count(name) > 0;
    }

    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

    /** Positional @p index, or empty when absent. */
    std::string positional(std::size_t index) const
    {
        return index < positionals_.size() ? positionals_[index] : "";
    }

    /** Flag value, falling back to positional @p pos_index. */
    std::string
    flagOrPositional(const std::string &name,
                     std::size_t pos_index) const
    {
        const auto it = flags_.find(name);
        if (it != flags_.end())
            return it->second;
        return positional(pos_index);
    }

    std::optional<std::uint64_t>
    u64(const std::string &name, std::size_t pos_index) const
    {
        const std::string text = flagOrPositional(name, pos_index);
        if (text.empty())
            return std::nullopt;
        return parseU64(text, "--" + name);
    }

    std::optional<double>
    number(const std::string &name, std::size_t pos_index) const
    {
        const std::string text = flagOrPositional(name, pos_index);
        if (text.empty())
            return std::nullopt;
        return parseDouble(text, "--" + name);
    }

  private:
    const FlagSpec *find(const std::string &name) const
    {
        for (const auto &f : spec_.flags)
            if (name == f.name)
                return &f;
        return nullptr;
    }

    const CommandSpec &spec_;
    std::vector<std::string> positionals_;
    std::map<std::string, std::string> flags_;
};

// ------------------------------------------------------ command specs

const FlagSpec kHelpFlag = {"help", nullptr, "show this help"};

const std::vector<CommandSpec> &
commands()
{
    static const std::vector<CommandSpec> specs = {
        {"characterize", "", 0, "print the OR8/FU circuit data",
         {kHelpFlag}},
        {"breakeven", "[p] [alpha]", 2,
         "breakeven interval at a technology point",
         {{"p", "X", "leakage factor (default 0.05)"},
          {"alpha", "A", "activity factor (default 0.5)"},
          kHelpFlag}},
        {"simulate", "<bench> [insts] [fus]", 3,
         "run the timing model",
         {{"insts", "N", "committed instructions (default 500000)"},
          {"fus", "N", "integer FU count, or 'auto' (default: paper)"},
          {"seed", "N", "trace generator seed (default 1)"},
          {"profile", "FILE",
           "custom workload JSON instead of <bench>"},
          {"json", nullptr, "emit JSON instead of a table"},
          kHelpFlag}},
        {"policies", "<bench> <p> [insts]", 3,
         "simulate, then evaluate sleep policies",
         {{"insts", "N", "committed instructions (default 500000)"},
          {"policies", "a,b,...",
           "policy specs (default: the paper's four)"},
          {"fus", "N", "integer FU count, or 'auto' (default: paper)"},
          {"seed", "N", "trace generator seed (default 1)"},
          {"alpha", "A", "activity factor (default 0.5)"},
          {"profile", "FILE",
           "custom workload JSON instead of <bench>"},
          {"json", nullptr, "emit JSON instead of a table"},
          {"csv", nullptr, "emit CSV instead of a table"},
          kHelpFlag}},
        {"sweep", "", 0,
         "parallel technology sweep over a workload grid",
         {{"benchmarks", "a,b,...",
           "workloads (default: full Table 3 suite)"},
          {"policies", "a,b,...",
           "policy specs (default: the paper's four)"},
          {"p-min", "X", "lowest leakage factor (default 0.05)"},
          {"p-max", "X", "highest leakage factor (default 1.0)"},
          {"steps", "N", "technology points (default 20)"},
          {"alpha", "A", "activity factor (default 0.5)"},
          {"insts", "N", "committed instructions (default 500000)"},
          {"seed", "N", "trace generator seed (default 1)"},
          {"threads", "N", "worker threads (default: hardware)"},
          {"profiles", "f,g,...", "custom workload JSON files"},
          {"imports", "f,g,...",
           "imported .lsimprof / idle-profile JSON workloads"},
          {"cache-dir", "DIR",
           "profile store shared across runs (skips warm phase-1 "
           "simulations)"},
          {"scalar-replay", nullptr,
           "legacy per-cell phase-2 replay (equivalence testing)"},
          {"chunk-intervals", "N",
           "distinct interval lengths per phase-2 replay chunk "
           "(default 0 = auto)"},
          {"json", nullptr, "emit JSON instead of a table"},
          {"csv", nullptr, "emit CSV instead of a table"},
          kHelpFlag}},
        {"batch", "<spec.json>", 1,
         "run many sweeps at once, deduping shared simulations",
         {{"cache-dir", "DIR", "profile store shared by the batch"},
          {"threads", "N", "worker threads (default: hardware)"},
          {"out-dir", "DIR",
           "write sweep_<i>.csv + sweep_<i>.json files here"},
          {"json", nullptr, "emit one JSON document on stdout"},
          {"csv", nullptr,
           "emit CSV on stdout ('# sweep <i>' separators)"},
          kHelpFlag}},
        {"serve", "", 0,
         "watch a spool directory for batch specs (daemon)",
         {{"spool", "DIR",
           "spool directory of incoming batch-spec JSON files"},
          {"results-dir", "DIR",
           "where results + status JSON go (default <spool>/results)"},
          {"cache-dir", "DIR",
           "profile store shared by every request"},
          {"socket", "PATH",
           "also accept requests on this Unix socket (use 'auto' "
           "for <spool>/lsim.sock)"},
          {"max-queue", "N",
           "bounded admission: max requests queued (default 64)"},
          {"ttl", "AGE",
           "prune consumed specs and result dirs older than AGE "
           "(e.g. 30d, 12h, 900s; plain numbers are days)"},
          {"cache-ttl", "AGE",
           "age-evict profile-store entries each drain (needs "
           "--cache-dir)"},
          {"threads", "N",
           "persistent worker pool size (default: hardware)"},
          {"poll-ms", "N", "spool scan interval (default 500)"},
          {"once", nullptr,
           "process the specs currently spooled, then exit"},
          {"request-timeout", "SECS",
           "per-request execution deadline; an exceeded request "
           "finishes in error status (default: none)"},
          {"faults", "SPECS",
           "install deterministic fault triggers, e.g. "
           "'store.write:after=3:error=EIO' (same grammar as "
           "LSIM_FAULTS; see README)"},
          {"trace", "FILE",
           "write Chrome-trace-format spans here (also via "
           "LSIM_TRACE=FILE)"},
          kHelpFlag}},
        {"submit", "<spec.json>", 1,
         "submit a batch spec to a serve daemon over its socket",
         {{"socket", "PATH",
           "daemon request socket (<spool>/lsim.sock)"},
          {"name", "NAME",
           "request name (default: the spec filename stem)"},
          {"priority", "N",
           "admission priority; higher executes first (default 0)"},
          {"wait", nullptr,
           "block until the request finishes; print the final "
           "status line too"},
          {"timeout", "SECS",
           "wait budget in seconds (default 3600)"},
          kHelpFlag},
         "exit status: 0 admitted (with --wait: finished done), "
         "2 finished\nerror (incl. deadline exceeded), 3 rejected "
         "at admission, 1 unreadable\nresponse; the failure detail "
         "is echoed on stderr"},
        {"wait", "<name>", 1,
         "block until a submitted request reaches done/error",
         {{"socket", "PATH",
           "daemon request socket (<spool>/lsim.sock)"},
          {"timeout", "SECS",
           "wait budget in seconds (default 3600)"},
          kHelpFlag},
         "exit status: 0 finished done, 2 finished error (incl. "
         "deadline\nexceeded or wait timeout), 3 rejected at "
         "admission, 1 unreadable\nresponse; the failure detail is "
         "echoed on stderr"},
        {"metrics", "<spool>", 1,
         "pretty-print a serve daemon's metrics.json",
         {{"json", nullptr, "print the raw JSON document instead"},
          kHelpFlag}},
        {"profile", "<export|import|ls|rm|gc> [arg]", 2,
         "export, import, list, and evict stored simulation profiles",
         {{"out", "FILE", "export/import: write a .lsimprof here"},
          {"cache-dir", "DIR", "profile store directory"},
          {"insts", "N", "export: instructions (default 500000)"},
          {"seed", "N", "export: trace seed (default 1)"},
          {"fus", "N",
           "export: FU count, or 'auto' (default: paper)"},
          {"profile", "FILE",
           "export: custom workload JSON instead of <bench>"},
          {"max-age", "AGE",
           "gc: evict entries older than AGE (e.g. 30d, 12h, 900s; "
           "plain numbers are days)"},
          {"max-bytes", "SIZE",
           "gc: then evict oldest entries until the store fits SIZE "
           "(suffixes K/M/G)"},
          kHelpFlag}},
        {"list", "", 0, "list benchmarks (or policies)",
         {{"policies", nullptr, "list registered policy specs"},
          kHelpFlag}},
    };
    return specs;
}

void
printUsage(std::ostream &os)
{
    os << "usage: lsim [--help] [--version] <command> [args]\n\n"
          "commands:\n";
    for (const auto &cmd : commands()) {
        std::string head = std::string("  ") + cmd.name;
        if (*cmd.positionals)
            head += std::string(" ") + cmd.positionals;
        os << head
           << std::string(
                  head.size() < 26 ? 26 - head.size() : 1, ' ')
           << cmd.help << "\n";
    }
    os << "\nrun 'lsim <command> --help' for that command's flags\n";
}

void
printCommandHelp(const CommandSpec &spec)
{
    std::cout << "usage: lsim " << spec.name;
    if (*spec.positionals)
        std::cout << " " << spec.positionals;
    std::cout << " [flags]\n  " << spec.help << "\n\nflags:\n";
    for (const auto &f : spec.flags) {
        std::string head = std::string("  --") + f.name;
        if (f.value_name)
            head += std::string(" <") + f.value_name + ">";
        head += std::string(
            head.size() < 24 ? 24 - head.size() : 1, ' ');
        std::cout << head << f.help << "\n";
    }
    if (spec.epilog)
        std::cout << "\n" << spec.epilog << "\n";
}

// ---------------------------------------------------------- commands

/**
 * Shared simulate/policies builder setup from parsed args. The
 * workload is either the named Table 3 benchmark or, with
 * --profile FILE, a custom JSON-loaded profile.
 */
api::ExperimentBuilder
builderFor(const Args &args, const std::string &bench,
           std::size_t insts_pos, std::size_t fus_pos)
{
    auto builder = api::Experiment::builder();
    if (args.has("profile")) {
        if (!bench.empty())
            die("give either <bench> or --profile, not both");
        builder.profile(trace::loadWorkloadProfile(
            args.flagOrPositional("profile", ~std::size_t{0})));
    } else {
        builder.workload(bench);
    }
    if (const auto insts = args.u64("insts", insts_pos))
        builder.insts(*insts);
    if (const auto seed = args.u64("seed", ~std::size_t{0}))
        builder.seed(*seed);
    const std::string fus = args.flagOrPositional("fus", fus_pos);
    if (fus == "auto")
        builder.fus(api::auto_select);
    else if (!fus.empty()) {
        const auto n = parseU32(fus, "--fus");
        if (n == 0)
            die("bad --fus '0': expected a positive count or 'auto'");
        builder.fus(n);
    }
    return builder;
}

int
cmdCharacterize()
{
    const circuit::Technology tech;
    circuit::FunctionalUnitCircuit fu(tech);
    Table t({"quantity", "value"});
    const auto c = fu.gate().characterize();
    t.addRow({"gate style", to_string(c.style)});
    t.addRow({"eval delay", fixed(c.eval_delay_ps, 1) + " ps"});
    t.addRow({"sleep delay", fixed(c.sleep_delay_ps, 1) + " ps"});
    t.addRow({"gate dynamic energy", fixed(c.dynamic_fj, 1) + " fJ"});
    t.addRow({"gate HI leakage/cycle", sci(c.leak_hi_fj, 2) + " fJ"});
    t.addRow({"gate LO leakage/cycle", sci(c.leak_lo_fj, 2) + " fJ"});
    t.addRow({"FU gates", std::to_string(fu.numGates())});
    t.addRow({"FU dynamic energy",
              fixed(fu.dynamicEnergy() / 1000, 2) + " pJ"});
    t.addRow({"FU breakeven (alpha=0.5)",
              std::to_string(fu.breakevenInterval(0.5)) + " cycles"});
    const auto mp = energy::ModelParams::fromCircuit(fu);
    t.addRow({"leakage factor p", fixed(mp.p, 4)});
    t.addRow({"sleep ratio k", sci(mp.k, 2)});
    t.addRow({"sleep overhead s", fixed(mp.s, 4)});
    t.print(std::cout);
    return 0;
}

int
cmdBreakeven(const Args &args)
{
    const auto mp =
        api::analysisPoint(args.number("p", 0).value_or(0.05),
                           args.number("alpha", 1).value_or(0.5));
    std::cout << "breakeven interval at p=" << mp.p << " alpha="
              << mp.alpha << ": "
              << energy::breakevenInterval(mp) << " cycles\n";
    return 0;
}

int
cmdList(const Args &args)
{
    if (args.has("policies")) {
        const auto &reg = sleep::PolicyRegistry::instance();
        Table t({"policy", "description"});
        for (const auto &key : reg.keys())
            t.addRow({key, reg.summary(key)});
        t.print(std::cout);
        return 0;
    }
    Table t({"benchmark", "suite", "paper IPC", "paper FUs"});
    for (const auto &p : trace::table3Profiles())
        t.addRow({p.name, p.suite, fixed(p.paper_ipc, 3),
                  std::to_string(p.paper_fus)});
    t.print(std::cout);
    return 0;
}

int
cmdSimulate(const Args &args)
{
    const std::string bench = args.positional(0);
    if (bench.empty() && !args.has("profile"))
        die("simulate: missing <bench> (see 'lsim list')");
    const auto ws =
        builderFor(args, bench, 1, 2).session().sim();

    if (args.has("json")) {
        JsonWriter w(std::cout);
        w.beginObject();
        harness::writeSimJson(w, ws);
        w.endObject();
        std::cout << "\n";
        return 0;
    }
    Table t({"metric", "value"});
    t.addRow({"IPC", fixed(ws.sim.ipc, 3)});
    t.addRow({"cycles", std::to_string(ws.sim.cycles)});
    t.addRow({"branch mispredict",
              fixed(100 * ws.sim.bpred.dirMispredictRate(), 2) + "%"});
    t.addRow({"L1D miss",
              fixed(100 * ws.sim.l1d.missRate(), 2) + "%"});
    t.addRow({"L2 miss", fixed(100 * ws.sim.l2.missRate(), 2) + "%"});
    t.addRow({"FU idle fraction",
              fixed(ws.idle.idleFraction(), 3)});
    t.addRow({"mean idle interval",
              fixed(ws.idle.meanInterval(), 1) + " cycles"});
    t.print(std::cout);
    return 0;
}

int
cmdPolicies(const Args &args)
{
    // With --profile the positionals shift left: <p> [insts].
    const bool custom = args.has("profile");
    const std::string bench = custom ? "" : args.positional(0);
    if (bench.empty() && !custom)
        die("policies: missing <bench> (see 'lsim list')");
    const std::string p_text = args.positional(custom ? 0 : 1);
    if (p_text.empty())
        die("policies: missing <p> (leakage factor, e.g. 0.05)");
    const double p = parseDouble(p_text, "<p>");
    const double alpha =
        args.number("alpha", ~std::size_t{0}).value_or(0.5);

    auto builder =
        builderFor(args, bench, custom ? 1 : 2, ~std::size_t{0})
            .technology(p, alpha);
    if (args.has("policies"))
        builder.policies(
            splitList(args.flagOrPositional("policies", ~std::size_t{0})));
    const auto result = builder.run();

    if (args.has("json")) {
        result.writeJson(std::cout);
        return 0;
    }
    if (args.has("csv")) {
        result.writeCsv(std::cout);
        return 0;
    }
    Table t({"policy", "energy (E_A)", "vs 100% compute",
             "leakage share"});
    for (const auto &r : result.policies)
        t.addRow({r.name, fixed(r.energy, 1),
                  fixed(r.relative_to_base, 3),
                  fixed(r.leakage_fraction, 3)});
    t.print(std::cout);
    return 0;
}

int
cmdSweep(const Args &args)
{
    api::SweepConfig cfg;
    if (args.has("benchmarks"))
        cfg.workloads =
            splitList(args.flagOrPositional("benchmarks", ~std::size_t{0}));
    if (args.has("policies"))
        cfg.policies =
            splitList(args.flagOrPositional("policies", ~std::size_t{0}));
    const double p_min =
        args.number("p-min", ~std::size_t{0}).value_or(0.05);
    const double p_max =
        args.number("p-max", ~std::size_t{0}).value_or(1.0);
    const std::string steps_text =
        args.flagOrPositional("steps", ~std::size_t{0});
    const unsigned steps =
        steps_text.empty() ? 20 : parseU32(steps_text, "--steps");
    const double alpha =
        args.number("alpha", ~std::size_t{0}).value_or(0.5);
    cfg.technologies = api::pSweep(p_min, p_max, steps, alpha);
    cfg.insts = args.u64("insts", ~std::size_t{0}).value_or(500'000);
    cfg.seed = args.u64("seed", ~std::size_t{0}).value_or(1);
    const std::string threads_text =
        args.flagOrPositional("threads", ~std::size_t{0});
    cfg.threads =
        threads_text.empty() ? 0 : parseU32(threads_text, "--threads");
    if (args.has("profiles"))
        for (const auto &path : splitList(
                 args.flagOrPositional("profiles", ~std::size_t{0})))
            cfg.profiles.push_back(trace::loadWorkloadProfile(path));
    if (args.has("imports"))
        cfg.imports = splitList(
            args.flagOrPositional("imports", ~std::size_t{0}));
    cfg.cache_dir = args.flagOrPositional("cache-dir", ~std::size_t{0});
    cfg.scalar_replay = args.has("scalar-replay");
    const std::string chunk_text =
        args.flagOrPositional("chunk-intervals", ~std::size_t{0});
    cfg.chunk_intervals = chunk_text.empty()
        ? 0
        : parseU64(chunk_text, "--chunk-intervals");

    const auto result = api::SweepRunner(cfg).run();

    // Provenance goes to stderr so CSV/JSON on stdout stays clean
    // and byte-comparable between cold and warm runs.
    if (!cfg.cache_dir.empty())
        std::cerr << "lsim: cache '" << cfg.cache_dir << "': "
                  << result.stats.sims_run << " simulated, "
                  << result.stats.cache_hits << " reused\n";

    if (args.has("json")) {
        result.writeJson(std::cout);
        return 0;
    }
    if (args.has("csv")) {
        result.writeCsv(std::cout);
        return 0;
    }
    std::vector<std::string> headers = {"p"};
    for (const auto &key : result.policy_keys)
        headers.push_back(key);
    Table t(headers);
    for (std::size_t ti = 0; ti < result.technologies.size(); ++ti) {
        std::vector<std::string> row = {
            fixed(result.technologies[ti].p, 3)};
        // Mean energy relative to the 100%-activity baseline across
        // the workload grid (works for any policy set).
        std::vector<double> mean(result.policy_keys.size(), 0.0);
        for (std::size_t w = 0; w < result.workloads.size(); ++w) {
            const auto &cell = result.cell(w, ti);
            for (std::size_t i = 0; i < mean.size(); ++i)
                mean[i] += cell.policies[i].relative_to_base;
        }
        for (double m : mean)
            row.push_back(fixed(
                m / static_cast<double>(result.workloads.size()), 3));
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "\n(mean energy relative to 100% compute across "
              << result.workloads.size() << " workload(s); use "
                 "--csv/--json for per-benchmark data)\n";
    return 0;
}

// ------------------------------------------------- profile command

/** One summary row per stored/exported simulation. Keep the two
 * overloads' columns in lockstep with simSummaryTable(). */
void
printSimSummary(Table &t, const std::string &key,
                const harness::WorkloadSim &ws)
{
    t.addRow({key, ws.name, std::to_string(ws.num_fus),
              std::to_string(ws.sim.committed),
              fixed(ws.sim.ipc, 3),
              fixed(ws.idle.idleFraction(), 3),
              std::to_string(ws.idle.numIntervals())});
}

void
printSimSummary(Table &t, const std::string &key,
                const store::IndexEntry &entry)
{
    t.addRow({key, entry.name, std::to_string(entry.fus),
              std::to_string(entry.committed), fixed(entry.ipc, 3),
              fixed(entry.idle_fraction, 3),
              std::to_string(entry.intervals)});
}

Table
simSummaryTable()
{
    return Table({"key", "benchmark", "fus", "committed", "ipc",
                  "idle frac", "intervals"});
}

int
cmdProfileExport(const Args &args)
{
    const std::string bench = args.positional(1);
    if (bench.empty() && !args.has("profile"))
        die("profile export: missing <bench> (or --profile FILE)");
    const std::string out =
        args.flagOrPositional("out", ~std::size_t{0});
    const std::string cache_dir =
        args.flagOrPositional("cache-dir", ~std::size_t{0});
    if (out.empty() && cache_dir.empty())
        die("profile export: need --out FILE and/or --cache-dir DIR");

    // The store key must describe the *request*, exactly as a sweep
    // would fingerprint it.
    api::detail::SimTask task;
    if (args.has("profile")) {
        if (!bench.empty())
            die("give either <bench> or --profile, not both");
        task.profile = trace::loadWorkloadProfile(
            args.flagOrPositional("profile", ~std::size_t{0}));
    } else {
        task.profile = trace::profileByName(bench);
    }
    task.insts =
        args.u64("insts", ~std::size_t{0}).value_or(500'000);
    task.seed = args.u64("seed", ~std::size_t{0}).value_or(1);
    const std::string fus = args.flagOrPositional("fus", ~std::size_t{0});
    if (fus == "auto")
        task.fus = api::auto_select;
    else if (!fus.empty())
        task.fus = parseU32(fus, "--fus");

    const std::string key = task.fingerprint();
    const auto ws = task.run();
    if (!cache_dir.empty())
        store::ProfileStore(cache_dir).save(key, ws);
    if (!out.empty())
        store::exportSim(out, key, ws);

    Table t = simSummaryTable();
    printSimSummary(t, key, ws);
    t.print(std::cout);
    return 0;
}

int
cmdProfileImport(const Args &args)
{
    const std::string file = args.positional(1);
    if (file.empty())
        die("profile import: missing <file>");
    const std::string out =
        args.flagOrPositional("out", ~std::size_t{0});
    const std::string cache_dir =
        args.flagOrPositional("cache-dir", ~std::size_t{0});
    if (out.empty() && cache_dir.empty())
        die("profile import: need --out FILE and/or --cache-dir DIR");

    const store::ImportedSim entry = store::importAnySim(file);
    if (!cache_dir.empty()) {
        if (entry.key.empty())
            die("profile import: '" + file +
                "' carries no generating configuration (JSON idle "
                "profiles cannot join the cache; use --out, then "
                "'sweep --imports')");
        store::ProfileStore(cache_dir).save(entry.key, entry.sim);
    }
    if (!out.empty())
        store::exportSim(out, entry.key, entry.sim);

    Table t = simSummaryTable();
    printSimSummary(t, entry.key.empty() ? "(imported)" : entry.key,
                    entry.sim);
    t.print(std::cout);
    return 0;
}

int
cmdProfileLs(const Args &args)
{
    const std::string cache_dir =
        args.flagOrPositional("cache-dir", ~std::size_t{0});
    if (cache_dir.empty())
        die("profile ls: missing --cache-dir DIR");
    // Served from the store index: no entry deserialization, O(1)
    // per row on an indexed store (unindexed files are read once
    // and adopted).
    Table t = simSummaryTable();
    for (const auto &row :
         store::ProfileStore(cache_dir).summaries())
        printSimSummary(t, row.key, row.entry);
    t.print(std::cout);
    return 0;
}

/**
 * "30d" / "12h" / "45m" / "900s" / plain days -> seconds. @p what
 * names the flag in errors. Suffix scaling is overflow-checked: a
 * value whose seconds exceed the double range is an error, never a
 * silently wrapped (or infinite) limit.
 */
double
parseDuration(const std::string &text, const std::string &what)
{
    if (text.empty())
        die("bad " + what + " '': expected a duration");
    std::string digits = text;
    double unit = 24.0 * 3600.0; // plain numbers are days
    switch (text.back()) {
    case 's': unit = 1.0; digits.pop_back(); break;
    case 'm': unit = 60.0; digits.pop_back(); break;
    case 'h': unit = 3600.0; digits.pop_back(); break;
    case 'd': unit = 24.0 * 3600.0; digits.pop_back(); break;
    default: break;
    }
    const double value = parseDouble(digits, what);
    if (value < 0.0)
        die("bad " + what + " '" + text + "': must be non-negative");
    const double seconds = value * unit;
    if (!std::isfinite(seconds))
        die("bad " + what + " '" + text +
            "': duration overflows (too many seconds)");
    return seconds;
}

/**
 * "500M" / "2G" / "64K" / plain bytes -> bytes. @p what names the
 * flag in errors. Suffix scaling is overflow-checked: 2^54G wraps
 * 64-bit arithmetic, so it must die, not become a tiny limit that
 * silently evicts a whole store.
 */
std::uint64_t
parseSize(const std::string &text, const std::string &what)
{
    if (text.empty())
        die("bad " + what + " '': expected a size");
    std::string digits = text;
    std::uint64_t unit = 1;
    switch (text.back()) {
    case 'K': case 'k':
        unit = 1024ull;
        digits.pop_back();
        break;
    case 'M': case 'm':
        unit = 1024ull * 1024;
        digits.pop_back();
        break;
    case 'G': case 'g':
        unit = 1024ull * 1024 * 1024;
        digits.pop_back();
        break;
    default:
        break;
    }
    const std::uint64_t value = parseU64(digits, what);
    if (unit > 1 &&
        value > std::numeric_limits<std::uint64_t>::max() / unit)
        die("bad " + what + " '" + text +
            "': size overflows 64 bits");
    return value * unit;
}

int
cmdProfileRm(const Args &args)
{
    const std::string key = args.positional(1);
    if (key.empty())
        die("profile rm: missing <key> (see 'lsim profile ls')");
    const std::string cache_dir =
        args.flagOrPositional("cache-dir", ~std::size_t{0});
    if (cache_dir.empty())
        die("profile rm: missing --cache-dir DIR");
    if (!store::ProfileStore(cache_dir).remove(key))
        die("profile rm: no entry '" + key + "' in '" + cache_dir +
            "'");
    std::cout << "removed " << key << "\n";
    return 0;
}

int
cmdProfileGc(const Args &args)
{
    const std::string cache_dir =
        args.flagOrPositional("cache-dir", ~std::size_t{0});
    if (cache_dir.empty())
        die("profile gc: missing --cache-dir DIR");
    store::ProfileStore::GcOptions options;
    if (args.has("max-age"))
        options.max_age_seconds = parseDuration(
            args.flagOrPositional("max-age", ~std::size_t{0}),
            "--max-age");
    if (args.has("max-bytes"))
        options.max_bytes = parseSize(
            args.flagOrPositional("max-bytes", ~std::size_t{0}),
            "--max-bytes");
    if (!options.max_age_seconds && !options.max_bytes)
        die("profile gc: need --max-age and/or --max-bytes");

    const auto stats = store::ProfileStore(cache_dir).gc(options);
    std::cout << "gc " << cache_dir << ": " << stats.scanned
              << " entries scanned, " << stats.removed
              << " evicted, " << stats.bytes_before << " -> "
              << stats.bytes_after << " bytes\n";
    if (stats.stat_errors > 0)
        std::cerr << "lsim: gc: " << stats.stat_errors
                  << " entr" << (stats.stat_errors == 1 ? "y" : "ies")
                  << " could not be examined (stat failed); kept\n";
    return 0;
}

int
cmdProfile(const Args &args)
{
    const std::string action = args.positional(0);
    if (action == "export")
        return cmdProfileExport(args);
    if (action == "import")
        return cmdProfileImport(args);
    if (action == "ls")
        return cmdProfileLs(args);
    if (action == "rm")
        return cmdProfileRm(args);
    if (action == "gc")
        return cmdProfileGc(args);
    die("profile: unknown action '" + action +
        "' (expected export, import, ls, rm, or gc)");
}

// --------------------------------------------------- batch command

int
cmdBatch(const Args &args)
{
    const std::string spec_path = args.positional(0);
    if (spec_path.empty())
        die("batch: missing <spec.json>");

    // The daemon and the CLI parse the same spec format
    // (serve::batchConfigFromJson); its invalid_argument throws are
    // caught in main() and die()d like any other user error.
    api::BatchConfig batch =
        serve::batchConfigFromJson(parseJsonFile(spec_path));

    batch.cache_dir =
        args.flagOrPositional("cache-dir", ~std::size_t{0});
    const std::string threads_text =
        args.flagOrPositional("threads", ~std::size_t{0});
    batch.threads =
        threads_text.empty() ? 0 : parseU32(threads_text, "--threads");

    const auto result = api::BatchRunner(batch).run();
    std::cerr << "lsim: batch: " << result.stats.requested_sims
              << " simulation(s) requested, "
              << result.stats.unique_sims << " unique, "
              << result.stats.sims_run << " simulated, "
              << result.stats.cache_hits << " reused\n";

    const std::string out_dir =
        args.flagOrPositional("out-dir", ~std::size_t{0});
    if (!out_dir.empty()) {
        std::filesystem::create_directories(out_dir);
        for (std::size_t i = 0; i < result.sweeps.size(); ++i) {
            const std::string stem =
                (std::filesystem::path(out_dir) /
                 ("sweep_" + std::to_string(i)))
                    .string();
            std::ofstream csv(stem + ".csv");
            result.sweeps[i].writeCsv(csv);
            std::ofstream json(stem + ".json");
            result.sweeps[i].writeJson(json);
            if (!csv || !json)
                die("batch: cannot write '" + stem + ".{csv,json}'");
            std::cout << stem << ".csv\n" << stem << ".json\n";
        }
        return 0;
    }
    if (args.has("json")) {
        std::cout << "{\"sweeps\":[\n";
        for (std::size_t i = 0; i < result.sweeps.size(); ++i) {
            if (i)
                std::cout << ",";
            result.sweeps[i].writeJson(std::cout);
        }
        std::cout << "]}\n";
        return 0;
    }
    if (args.has("csv")) {
        for (std::size_t i = 0; i < result.sweeps.size(); ++i) {
            std::cout << "# sweep " << i << "\n";
            result.sweeps[i].writeCsv(std::cout);
        }
        return 0;
    }
    Table t({"sweep", "workloads", "points", "policies", "cells"});
    for (std::size_t i = 0; i < result.sweeps.size(); ++i) {
        const auto &s = result.sweeps[i];
        t.addRow({std::to_string(i),
                  std::to_string(s.workloads.size()),
                  std::to_string(s.technologies.size()),
                  std::to_string(s.policy_keys.size()),
                  std::to_string(s.cells.size())});
    }
    t.print(std::cout);
    std::cout << "\n(use --out-dir, --csv, or --json for the "
                 "per-cell data)\n";
    return 0;
}

// --------------------------------------------------- serve command

/** Set by SIGINT/SIGTERM; the daemon drains and exits cleanly. */
std::atomic<bool> g_stop_requested{false};

// A lock-based atomic would take a mutex inside the handler —
// async-signal-unsafe and a self-deadlock if the signal lands while
// the main thread holds it. Refuse to build anywhere plain-bool
// atomics are not lock-free.
static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handler flag must be a lock-free atomic");

/**
 * Strictly async-signal-safe: the body is a single lock-free atomic
 * store — no locking, no allocation, no I/O, nothing that could
 * reenter a non-reentrant runtime facility. tools/lint.py enforces
 * this shape (signal-safety rule); anything the daemon should *do*
 * about the signal happens on the polling thread via ServeConfig's
 * stop hook.
 */
extern "C" void
handleStopSignal(int)
{
    g_stop_requested.store(true);
}

int
cmdServe(const Args &args)
{
    serve::ServeConfig cfg;
    cfg.spool_dir = args.flagOrPositional("spool", ~std::size_t{0});
    if (cfg.spool_dir.empty())
        die("serve: missing --spool DIR");
    cfg.results_dir =
        args.flagOrPositional("results-dir", ~std::size_t{0});
    cfg.cache_dir =
        args.flagOrPositional("cache-dir", ~std::size_t{0});
    const std::string threads_text =
        args.flagOrPositional("threads", ~std::size_t{0});
    cfg.threads =
        threads_text.empty() ? 0 : parseU32(threads_text, "--threads");
    const std::string poll_text =
        args.flagOrPositional("poll-ms", ~std::size_t{0});
    cfg.poll_ms =
        poll_text.empty() ? 500 : parseU32(poll_text, "--poll-ms");
    cfg.once = args.has("once");
    cfg.socket_path =
        args.flagOrPositional("socket", ~std::size_t{0});
    if (cfg.socket_path == "auto")
        cfg.socket_path = (std::filesystem::path(cfg.spool_dir) /
                           "lsim.sock")
                              .string();
    const std::string queue_text =
        args.flagOrPositional("max-queue", ~std::size_t{0});
    if (!queue_text.empty())
        cfg.max_queue = parseU64(queue_text, "--max-queue");
    const std::string ttl_text =
        args.flagOrPositional("ttl", ~std::size_t{0});
    if (!ttl_text.empty())
        cfg.ttl_seconds = parseDuration(ttl_text, "--ttl");
    const std::string cache_ttl_text =
        args.flagOrPositional("cache-ttl", ~std::size_t{0});
    if (!cache_ttl_text.empty()) {
        if (cfg.cache_dir.empty())
            die("serve: --cache-ttl needs --cache-dir");
        cfg.cache_ttl_seconds =
            parseDuration(cache_ttl_text, "--cache-ttl");
    }
    const std::string request_timeout_text =
        args.flagOrPositional("request-timeout", ~std::size_t{0});
    if (!request_timeout_text.empty())
        cfg.request_timeout_s = parseDouble(request_timeout_text,
                                            "--request-timeout");
    // Additive with LSIM_FAULTS (already installed by main), so a
    // wrapper script's environment and a flag can compose.
    const std::string faults_text =
        args.flagOrPositional("faults", ~std::size_t{0});
    if (!faults_text.empty())
        fault::configure(faults_text);

    // --trace complements the LSIM_TRACE environment variable (main
    // already consulted the latter); the flag wins when both are set.
    const std::string trace_file =
        args.flagOrPositional("trace", ~std::size_t{0});
    if (!trace_file.empty())
        obs::TraceSession::instance().start(trace_file);

    // Graceful drain: the first SIGINT/SIGTERM finishes the request
    // in flight, then the loop exits; specs still spooled stay put
    // for the next daemon (or this one restarted).
    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);
    cfg.stop = [] { return g_stop_requested.load(); };

    serve::Daemon daemon(cfg);
    if (!cfg.once)
        std::cerr << "lsim: serving spool '" << cfg.spool_dir
                  << "' (results: " << daemon.resultsDir()
                  << (cfg.cache_dir.empty()
                          ? std::string(", no cache")
                          : ", cache: " + cfg.cache_dir)
                  << (cfg.socket_path.empty()
                          ? std::string()
                          : ", socket: " + cfg.socket_path)
                  << "); SIGINT drains\n";
    const auto stats = daemon.run();
    std::cerr << "lsim: serve: " << stats.processed
              << " spec(s) processed (" << stats.done << " done, "
              << stats.failed << " failed"
              << (stats.coalesced
                      ? ", " + std::to_string(stats.coalesced) +
                            " coalesced"
                      : "")
              << (stats.rejected
                      ? ", " + std::to_string(stats.rejected) +
                            " rejected"
                      : "")
              << (stats.recovered
                      ? ", " + std::to_string(stats.recovered) +
                            " recovered"
                      : "")
              << ") over " << stats.polls << " poll(s)\n";
    return 0;
}

// -------------------------------------------- submit/wait commands

/**
 * Map the daemon's final status line to the documented exit code —
 * 0 done/queued, 2 error, 3 rejected, 1 unreadable — and echo the
 * failure detail (the status line's "error" field) on stderr so
 * scripts get a human-readable reason without parsing JSON.
 */
int
exitCodeForLine(const std::string &line, const char *cmd_name)
{
    std::string state, detail;
    try {
        const JsonValue doc = parseJson(line);
        state = doc.at("state").asString();
        if (const JsonValue *e = doc.find("error"))
            detail = e->asString();
    } catch (const std::exception &) {
        std::cerr << "lsim: " << cmd_name
                  << ": unreadable response: " << line << "\n";
        return 1;
    }
    if (state == "done" || state == "queued")
        return 0;
    if (!detail.empty())
        std::cerr << "lsim: " << cmd_name << ": " << state << ": "
                  << detail << "\n";
    if (state == "error")
        return 2;
    if (state == "rejected")
        return 3;
    return 1;
}

/**
 * Socket client of a serve daemon: ship a spec, print the daemon's
 * status-line responses, exit 0 only when the request was admitted
 * (and, with --wait, finished "done").
 */
int
cmdSubmit(const Args &args)
{
    const std::string spec_path = args.positional(0);
    if (spec_path.empty())
        die("submit: missing <spec.json>");
    const std::string socket_path =
        args.flagOrPositional("socket", ~std::size_t{0});
    if (socket_path.empty())
        die("submit: missing --socket PATH (the daemon's "
            "<spool>/lsim.sock)");

    std::ifstream in(spec_path, std::ios::binary);
    if (!in)
        die("submit: cannot read '" + spec_path + "'");
    std::ostringstream spec;
    spec << in.rdbuf();

    std::string name =
        args.flagOrPositional("name", ~std::size_t{0});
    if (name.empty())
        name = std::filesystem::path(spec_path).stem().string();

    int priority = 0;
    const std::string prio_text =
        args.flagOrPositional("priority", ~std::size_t{0});
    if (!prio_text.empty())
        priority = static_cast<int>(
            parseDouble(prio_text, "--priority"));
    const bool wait = args.has("wait");
    const std::string timeout_text =
        args.flagOrPositional("timeout", ~std::size_t{0});
    const double timeout_s =
        timeout_text.empty()
            ? 3600.0
            : parseDouble(timeout_text, "--timeout");

    const serve::ClientResult result = serve::socketSubmit(
        socket_path, name, spec.str(), priority, wait, timeout_s);
    if (!result.ok)
        die("submit: " + result.error);
    for (const std::string &line : result.lines)
        std::cout << line << "\n";
    return exitCodeForLine(result.lines.back(), "submit");
}

/** Socket client: block until <name> is terminal on the daemon. */
int
cmdWait(const Args &args)
{
    const std::string name = args.positional(0);
    if (name.empty())
        die("wait: missing <name>");
    const std::string socket_path =
        args.flagOrPositional("socket", ~std::size_t{0});
    if (socket_path.empty())
        die("wait: missing --socket PATH (the daemon's "
            "<spool>/lsim.sock)");
    const std::string timeout_text =
        args.flagOrPositional("timeout", ~std::size_t{0});
    const double timeout_s =
        timeout_text.empty()
            ? 3600.0
            : parseDouble(timeout_text, "--timeout");

    const serve::ClientResult result =
        serve::socketWait(socket_path, name, timeout_s);
    if (!result.ok)
        die("wait: " + result.error);
    for (const std::string &line : result.lines)
        std::cout << line << "\n";
    return exitCodeForLine(result.lines.back(), "wait");
}

// ------------------------------------------------- metrics command

/**
 * Pretty-print a daemon's live metrics.json (written atomically by
 * the serve drain loop, so this never observes a torn file).
 */
int
cmdMetrics(const Args &args)
{
    std::string target = args.positional(0);
    if (target.empty())
        die("metrics: missing <spool> (a spool directory or a "
            "metrics.json path)");
    std::filesystem::path path(target);
    if (std::filesystem::is_directory(path))
        path /= "metrics.json";

    if (args.has("json")) {
        std::ifstream in(path, std::ios::binary);
        if (!in)
            die("metrics: cannot read '" + path.string() + "'");
        std::cout << in.rdbuf();
        return 0;
    }

    const JsonValue doc = parseJsonFile(path.string());
    const JsonValue *counters = doc.find("counters");
    const JsonValue *gauges = doc.find("gauges");
    const JsonValue *histograms = doc.find("histograms");

    if (counters && !counters->members().empty()) {
        Table t({"counter", "value"});
        for (const auto &[name, value] : counters->members())
            t.addRow({name, std::to_string(value.asU64())});
        std::cout << "counters:\n";
        t.print(std::cout);
        std::cout << "\n";
    }
    if (gauges && !gauges->members().empty()) {
        Table t({"gauge", "value"});
        for (const auto &[name, value] : gauges->members())
            t.addRow({name, compactNumber(value.asNumber())});
        std::cout << "gauges:\n";
        t.print(std::cout);
        std::cout << "\n";
    }
    if (histograms && !histograms->members().empty()) {
        Table t({"histogram (ms)", "count", "mean", "p50", "p90",
                 "p99", "max"});
        for (const auto &[name, h] : histograms->members()) {
            const std::uint64_t count = h.at("count").asU64();
            const double mean = count
                ? h.at("sum").asNumber() /
                    static_cast<double>(count)
                : 0.0;
            t.addRow({name, std::to_string(count), fixed(mean, 3),
                      fixed(h.at("p50").asNumber(), 3),
                      fixed(h.at("p90").asNumber(), 3),
                      fixed(h.at("p99").asNumber(), 3),
                      fixed(h.at("max").asNumber(), 3)});
        }
        std::cout << "histograms:\n";
        t.print(std::cout);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);

    // LSIM_FAULTS installs deterministic fault triggers for any
    // command (grammar in src/common/fault.hh); free when unset.
    try {
        fault::configureFromEnv();
    } catch (const std::exception &err) {
        die(std::string("bad LSIM_FAULTS: ") + err.what());
    }

    // LSIM_TRACE=out.json enables span collection for any command;
    // the flusher writes the trace on every normal return path.
    obs::TraceSession::instance().startFromEnv();
    struct TraceFlusher
    {
        ~TraceFlusher() { obs::TraceSession::instance().stop(); }
    } trace_flusher;

    if (argc < 2) {
        printUsage(std::cerr);
        return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
        printUsage(std::cout);
        return 0;
    }
    if (cmd == "--version" || cmd == "version") {
        std::cout << kVersion << "\n";
        return 0;
    }

    const CommandSpec *spec = nullptr;
    for (const auto &c : commands())
        if (cmd == c.name)
            spec = &c;
    if (!spec)
        die("unknown command '" + cmd + "'");

    const Args args(argc - 2, argv + 2, *spec);
    if (args.has("help")) {
        printCommandHelp(*spec);
        return 0;
    }

    try {
        if (cmd == "characterize")
            return cmdCharacterize();
        if (cmd == "breakeven")
            return cmdBreakeven(args);
        if (cmd == "simulate")
            return cmdSimulate(args);
        if (cmd == "policies")
            return cmdPolicies(args);
        if (cmd == "sweep")
            return cmdSweep(args);
        if (cmd == "batch")
            return cmdBatch(args);
        if (cmd == "serve")
            return cmdServe(args);
        if (cmd == "submit")
            return cmdSubmit(args);
        if (cmd == "wait")
            return cmdWait(args);
        if (cmd == "metrics")
            return cmdMetrics(args);
        if (cmd == "profile")
            return cmdProfile(args);
        if (cmd == "list")
            return cmdList(args);
    } catch (const std::invalid_argument &err) {
        die(err.what());
    } catch (const lsim::store::StoreError &err) {
        die(err.what());
    }
    die("unknown command '" + cmd + "'");
}
