#!/usr/bin/env python3
"""Semantic concurrency analyzer for the lsim tree (stdlib only).

Where tools/lint.py is a token grep, this pass actually parses the
C++ sources: a lexer plus a lightweight declaration/scope parser
extract, per function, which locks are acquired (RAII guards over
annotated lsim::Mutex, accessor-returned mutexes, FileLock::acquire
scopes) and which functions are called while each lock is held. Call
edges are resolved across translation units (bare calls through the
enclosing class, member calls through declared member types, chained
calls through return types), acquisition and blocking sets propagate
transitively through the call graph, and the result is a whole-repo
lock-order graph.

Checks:
  deadlock-cycle       cycle (or self-edge) in the lock-order graph,
                       reported as file:line acquisition chains.
  blocking-under-lock  a blocking primitive (recv/accept4/poll/
                       sleep/flock/fsync/atomicWriteFile/...) runs,
                       directly or transitively, while an in-process
                       mutex is held.
  guard-temporary      `MutexLock(mu_);` — an unnamed guard that
                       releases on the same statement.
  guard-escape         a reference/pointer-returning function hands
                       out a GUARDED_BY member without a REQUIRES
                       contract.

Deliberate debt (today: the store holds index_mu_ across the on-disk
index merge, by design) lives in tools/analyze/allowlist.txt with the
same ratchet semantics as lint_allowlist.txt: counts may only burn
down, and shrinking them demands --update so the new floor is locked
in. Any new edge fails the build.

Usage:
  tools/analyze/analyze.py               analyze src/ against the allowlist
  tools/analyze/analyze.py --json OUT    also dump the lock graph + findings
  tools/analyze/analyze.py --update      rewrite the allowlist after burn-down
  tools/analyze/analyze.py --selftest    run against tests/analyze_fixtures/
                                         and require exactly the planted
                                         EXPECT-FINDING defects
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from collections import namedtuple
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SRC_DIR = REPO / "src"
FIXTURE_DIR = REPO / "tests" / "analyze_fixtures"
ALLOWLIST = Path(__file__).resolve().parent / "allowlist.txt"

# The files that *define* the locking primitives describe, not use,
# the discipline.
EXCLUDE = {"src/common/mutex.hh", "src/common/thread_annotations.hh"}

GUARD_TYPES = {"MutexLock", "lock_guard", "unique_lock",
               "scoped_lock", "shared_lock"}

# Condition-variable operations release the lock while parked (or do
# not touch it at all); they are never blocking-under-lock findings.
CV_OPS = {"wait", "wait_for", "wait_until", "notify_one", "notify_all"}

# Names that park the calling thread in the kernel (or do unbounded
# filesystem work).  atomicWriteFile / FileLock::acquire are ours but
# are the repo's canonical slow-path primitives, so they are
# boundaries: callers see them, not their syscall internals.
BLOCKING = {
    "recv", "recvfrom", "recvmsg", "send", "sendto", "sendmsg",
    "accept", "accept4", "connect", "poll", "select", "epoll_wait",
    "sleep", "usleep", "nanosleep", "sleep_for", "sleep_until",
    "flock", "fsync", "fdatasync", "system", "popen", "waitpid",
    "join", "atomicWriteFile",
}

ANNOTATIONS = {
    "CAPABILITY", "SCOPED_CAPABILITY", "GUARDED_BY", "PT_GUARDED_BY",
    "REQUIRES", "REQUIRES_SHARED", "ACQUIRE", "ACQUIRE_SHARED",
    "RELEASE", "RELEASE_SHARED", "RELEASE_GENERIC", "TRY_ACQUIRE",
    "TRY_ACQUIRE_SHARED", "EXCLUDES", "ASSERT_CAPABILITY",
    "RETURN_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS",
}

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "decltype", "catch", "new", "delete", "throw", "case", "do",
    "else", "goto", "static_cast", "dynamic_cast", "const_cast",
    "reinterpret_cast", "static_assert", "assert", "noexcept",
    "typeid", "alignas", "co_await", "co_return", "co_yield",
}

QUALIFIER_IDS = {"const", "noexcept", "override", "final", "mutable",
                 "volatile", "try"}

STORAGE_IDS = {"static", "inline", "virtual", "explicit", "constexpr",
               "extern", "friend", "mutable", "typename", "consteval",
               "constinit", "thread_local"}

SMART_WRAPPERS = {"unique_ptr", "shared_ptr", "weak_ptr", "optional",
                  "atomic"}

# Method names that are overwhelmingly std:: container/atomic/stream
# operations.  When a member call's receiver type cannot be resolved,
# these never fall back to unique-name lookup: `done.load()` on a
# std::atomic must not resolve to ProfileStore::load.
STD_METHODS = {
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_or",
    "fetch_and", "compare_exchange_weak", "compare_exchange_strong",
    "test_and_set", "size", "empty", "count", "find", "begin", "end",
    "rbegin", "rend", "erase", "insert", "emplace", "emplace_back",
    "push_back", "pop_back", "push_front", "pop_front", "clear",
    "reset", "release", "get", "at", "front", "back", "data", "c_str",
    "str", "substr", "append", "resize", "reserve", "swap", "value",
    "has_value", "value_or", "good", "fail", "eof", "open", "close",
    "is_open", "write", "read", "getline", "put", "flush", "tellg",
    "seekg", "native_handle", "joinable", "detach", "length",
}

Tok = namedtuple("Tok", "kind val line")

MULTI_OPS = ("...", "<<=", ">>=", "->*", "::", "->", "<=", ">=", "==",
             "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=",
             "%=", "|=", "&=", "^=", "<<", ">>")


def lex(text):
    """Tokenize C++ source: comments, strings, and preprocessor
    lines are consumed; identifiers, numbers, and operators come out
    with 1-based line numbers."""
    toks = []
    i, n, line = 0, len(text), 1
    at_line_start = True
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
            continue
        if text.startswith("/*", i):
            j = text.find("*/", i + 2)
            if j < 0:
                break
            line += text.count("\n", i, j + 2)
            i = j + 2
            continue
        if c == "#" and at_line_start:
            # Preprocessor directive: skip, honoring \-continuations.
            while i < n:
                j = text.find("\n", i)
                if j < 0:
                    i = n
                    break
                k = j - 1
                while k >= i and text[k] in " \t\r":
                    k -= 1
                cont = k >= i and text[k] == "\\"
                line += 1
                i = j + 1
                if not cont:
                    break
            at_line_start = True
            continue
        at_line_start = False
        if c == "R" and text.startswith('R"', i):
            m = re.match(r'R"([^(\s"]{0,16})\(', text[i:])
            if m:
                end = ")" + m.group(1) + '"'
                j = text.find(end, i + m.end())
                if j < 0:
                    break
                line += text.count("\n", i, j + len(end))
                toks.append(Tok("str", '""', line))
                i = j + len(end)
                continue
        if c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            toks.append(Tok("str", '""', line))
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            toks.append(Tok("chr", "''", line))
            i = j + 1
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            toks.append(Tok("id", text[i:j], line))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            while j < n and (text[j].isalnum() or text[j] in "._'"
                             or (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            toks.append(Tok("num", text[i:j], line))
            i = j
            continue
        for op in MULTI_OPS:
            if text.startswith(op, i):
                toks.append(Tok("punct", op, line))
                i += len(op)
                break
        else:
            toks.append(Tok("punct", c, line))
            i += 1
    return toks


class ClassInfo:
    def __init__(self, qname):
        self.qname = qname
        self.mutex_members = set()        # member names of type Mutex
        self.member_types = {}            # member name -> type class name
        self.guarded = {}                 # member name -> guard expr tokens
        self.methods = set()              # unqualified method names


class FuncDef:
    def __init__(self, qname, cls, file, line, ret, requires, body):
        self.qname = qname
        self.cls = cls                    # enclosing class qname or None
        self.file = file
        self.line = line
        self.ret = ret                    # return-type token values
        self.requires = requires          # resolved lock ids (filled later)
        self.requires_exprs = []          # raw REQUIRES argument token lists
        self.body = body                  # (start, end) token indices or None
        self.events = []                  # filled by body analysis


Finding = namedtuple("Finding", "rule key file line message")


def skip_balanced(toks, i, open_val, close_val):
    """toks[i] == open_val; return index of the matching close."""
    depth = 0
    n = len(toks)
    while i < n:
        v = toks[i].val
        if v == open_val:
            depth += 1
        elif v == close_val:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return n - 1


def skip_angles(toks, i):
    """toks[i] == '<'; return index after the matching '>'.  Handles
    '>>' closing two levels, bails out on obvious non-template uses."""
    depth = 0
    n = len(toks)
    j = i
    while j < n:
        v = toks[j].val
        if v == "<":
            depth += 1
        elif v == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif v == ">>":
            depth -= 2
            if depth <= 0:
                return j + 1
        elif v in (";", "{", "}"):
            return i + 1      # not a template argument list after all
        j += 1
    return n


class FileParser:
    """Parses one file into classes + function definitions."""

    def __init__(self, relpath, toks, model):
        self.file = relpath
        self.toks = toks
        self.model = model
        self.scope = []   # list of (kind, name) kind in {'ns', 'class'}

    def container_qname(self):
        return "::".join(name for _, name in self.scope)

    def enclosing_class(self):
        for kind, _ in reversed(self.scope):
            if kind == "class":
                return self.container_qname_until_class()
        return None

    def container_qname_until_class(self):
        # qname of the innermost class scope (includes outer namespaces)
        names = []
        for kind, name in self.scope:
            names.append(name)
        # find last class index
        idx = max(i for i, (k, _) in enumerate(self.scope) if k == "class")
        return "::".join(names[: idx + 1])

    def container(self):
        """ClassInfo-like record for the current scope (class body or
        namespace body — namespace-scope mutexes live here too)."""
        q = self.container_qname()
        return self.model.cls(q)

    def parse(self):
        toks = self.toks
        n = len(toks)
        i = 0
        while i < n:
            t = toks[i]
            v = t.val
            if t.kind == "id":
                if v == "namespace":
                    i = self.parse_namespace(i)
                    continue
                if v in ("class", "struct", "union"):
                    ni = self.parse_class(i)
                    if ni is not None:
                        i = ni
                        continue
                if v == "enum":
                    i = self.skip_enum(i)
                    continue
                if v in ("using", "typedef", "static_assert"):
                    i = self.skip_to_semicolon(i)
                    continue
                if v == "friend":
                    i = self.skip_to_semicolon(i)
                    continue
                if v == "template":
                    i += 1
                    if i < n and toks[i].val == "<":
                        i = skip_angles(toks, i)
                    continue
                if v in ("public", "private", "protected") and \
                        i + 1 < n and toks[i + 1].val == ":":
                    i += 2
                    continue
            if v == "}":
                if self.scope:
                    self.scope.pop()
                i += 1
                continue
            if v in (";", ":"):
                i += 1
                continue
            if v == "[":
                i = skip_balanced(toks, i, "[", "]") + 1  # [[attributes]]
                continue
            i = self.parse_decl(i)
        return

    def parse_namespace(self, i):
        toks = self.toks
        n = len(toks)
        j = i + 1
        parts = []
        while j < n and (toks[j].kind == "id" or toks[j].val == "::"):
            if toks[j].kind == "id":
                parts.append(toks[j].val)
            j += 1
        if j < n and toks[j].val == "=":
            return self.skip_to_semicolon(j)
        if j < n and toks[j].val == "{":
            self.scope.append(("ns", "::".join(parts) or "(anon)"))
            return j + 1
        return j + 1

    def parse_class(self, i):
        """Returns new index, or None if this turned out not to be a
        class definition (e.g. `struct X *p;` declarator use)."""
        toks = self.toks
        n = len(toks)
        j = i + 1
        parts = []
        while j < n:
            v = toks[j].val
            if toks[j].kind == "id":
                if v == "final":
                    j += 1
                    continue
                if v == "alignas":
                    j += 1
                    if j < n and toks[j].val == "(":
                        j = skip_balanced(toks, j, "(", ")") + 1
                    continue
                parts.append(v)
                j += 1
                continue
            if v == "::":
                j += 1
                continue
            if v == "[":
                j = skip_balanced(toks, j, "[", "]") + 1
                continue
            break
        if j >= n:
            return n
        v = toks[j].val
        if v == ";":
            return j + 1          # forward declaration
        if v == ":":
            # base clause: skip to the class body brace
            while j < n and toks[j].val != "{":
                if toks[j].val == "<":
                    j = skip_angles(toks, j)
                    continue
                if toks[j].val == "(":
                    j = skip_balanced(toks, j, "(", ")") + 1
                    continue
                j += 1
            v = toks[j].val if j < n else ""
        if v == "{":
            name = "::".join(parts) if parts else "(anon-class)"
            self.scope.append(("class", name))
            self.model.cls(self.container_qname())  # ensure it exists
            return j + 1
        return None                # `struct X x;` style use — re-parse as decl

    def skip_enum(self, i):
        toks = self.toks
        n = len(toks)
        j = i
        while j < n and toks[j].val not in ("{", ";"):
            j += 1
        if j < n and toks[j].val == "{":
            j = skip_balanced(toks, j, "{", "}") + 1
        return self.skip_to_semicolon(j - 1) if j < n else n

    def skip_to_semicolon(self, i):
        toks = self.toks
        n = len(toks)
        j = i
        while j < n:
            v = toks[j].val
            if v == ";":
                return j + 1
            if v == "(":
                j = skip_balanced(toks, j, "(", ")") + 1
                continue
            if v == "{":
                j = skip_balanced(toks, j, "{", "}") + 1
                continue
            if v == "[":
                j = skip_balanced(toks, j, "[", "]") + 1
                continue
            j += 1
        return n

    def parse_decl(self, i):
        """One declaration at namespace/class scope: a variable, a
        method declaration, or a function definition."""
        toks = self.toks
        n = len(toks)
        j = i
        annos = []                 # (name, (open, close)) annotation groups
        decl_group = None          # (name_start, name_end, open, close)
        while j < n:
            v = toks[j].val
            if v in (";",):
                self.process_var(i, j, annos)
                return j + 1
            if v == "=":
                end = self.skip_to_semicolon(j)
                self.process_var(i, j, annos)
                return end
            if v == "{":
                if decl_group is None:
                    # braced member init:  std::atomic<bool> x{false};
                    j = skip_balanced(toks, j, "{", "}") + 1
                    continue
                break
            if v == "<":
                j = skip_angles(toks, j)
                continue
            if v == "[":
                j = skip_balanced(toks, j, "[", "]") + 1
                continue
            if v == "(":
                close = skip_balanced(toks, j, "(", ")")
                name_start, name_end = self.declarator_name(i, j)
                prev = toks[name_end].val if name_end >= i else ""
                if name_end >= i and prev in ANNOTATIONS:
                    annos.append((prev, (j, close)))
                    j = close + 1
                    continue
                if name_end >= i:
                    # Function declarator (declaration or definition):
                    # hand off so REQUIRES on header declarations is
                    # captured too.
                    return self.parse_function(
                        i, (name_start, name_end, j, close))
                j = close + 1
                continue
            j += 1
        if decl_group is None:
            return self.skip_to_semicolon(i)
        return self.parse_function(i, decl_group)

    def declarator_name(self, lo, open_idx):
        """Walk back from '(' to pick up the (possibly qualified)
        declarator name; returns (start, end) token indices of the
        name, with end == index of the token just before '('."""
        toks = self.toks
        k = open_idx - 1
        if k < lo:
            return (lo, lo - 1)
        if toks[k].kind != "id":
            # operator== / operator() / operator bool...
            if toks[k].val == ")" or toks[k].val == "]":
                return (lo, lo - 1)
            j = k
            while j >= lo and toks[j].val != "operator":
                if toks[j].kind == "id" and toks[j].val != "operator":
                    break
                j -= 1
            if j >= lo and toks[j].val == "operator":
                return (j, k)
            return (lo, lo - 1)
        start = k
        while start - 2 >= lo and toks[start - 1].val == "::" \
                and toks[start - 2].kind == "id":
            start -= 2
        if start - 1 >= lo and toks[start - 1].val == "~":
            start -= 1
        return (start, k)

    def parse_function(self, decl_start, decl_group):
        toks = self.toks
        n = len(toks)
        name_start, name_end, popen, pclose = decl_group
        name_parts = [t.val for t in toks[name_start:name_end + 1]
                      if t.kind == "id" or t.val == "~"]
        # ~Foo -> '~Foo' single component
        parts = []
        tilde = False
        for p in name_parts:
            if p == "~":
                tilde = True
                continue
            parts.append("~" + p if tilde else p)
            tilde = False
        if not parts:
            return self.skip_to_semicolon(decl_start)

        ret = [t.val for t in toks[decl_start:name_start]
               if not (t.kind == "id" and t.val in STORAGE_IDS)]

        requires_exprs = []
        j = pclose + 1
        while j < n:
            t = toks[j]
            v = t.val
            if t.kind == "id":
                if v in ANNOTATIONS:
                    j += 1
                    if j < n and toks[j].val == "(":
                        close = skip_balanced(toks, j, "(", ")")
                        if v in ("REQUIRES", "REQUIRES_SHARED"):
                            requires_exprs.extend(
                                split_args(toks, j + 1, close))
                        j = close + 1
                    continue
                if v in QUALIFIER_IDS or v == "->":
                    j += 1
                    continue
                # trailing return type identifiers etc.
                j += 1
                continue
            if v in ("&", "&&", "->", "::", "*", ","):
                j += 1
                continue
            if v == "<":
                j = skip_angles(toks, j)
                continue
            if v == "(":
                j = skip_balanced(toks, j, "(", ")") + 1
                continue
            break
        if j >= n:
            return n

        body = None
        end = j
        if toks[j].val == "=":        # = default / = delete / = 0
            end = self.skip_to_semicolon(j)
        elif toks[j].val == ":":      # constructor initializer list
            j += 1
            while j < n:
                while j < n and toks[j].kind == "id" or \
                        (j < n and toks[j].val in ("::", "<", ">")):
                    if toks[j].val == "<":
                        j = skip_angles(toks, j)
                        continue
                    j += 1
                if j < n and toks[j].val == "(":
                    j = skip_balanced(toks, j, "(", ")") + 1
                elif j < n and toks[j].val == "{":
                    j = skip_balanced(toks, j, "{", "}") + 1
                if j < n and toks[j].val == ",":
                    j += 1
                    continue
                break
            if j < n and toks[j].val == "{":
                close = skip_balanced(toks, j, "{", "}")
                body = (j + 1, close)
                end = close + 1
            else:
                end = self.skip_to_semicolon(j)
        elif toks[j].val == "{":
            close = skip_balanced(toks, j, "{", "}")
            body = (j + 1, close)
            end = close + 1
        elif toks[j].val == ";":
            end = j + 1
        else:
            end = self.skip_to_semicolon(j)

        cls = None
        scope_q = self.container_qname()
        container_is_class = any(k == "class" for k, _ in self.scope)
        if len(parts) > 1:
            # out-of-line Class::method — the class is scope + explicit
            # qualifier
            qual = "::".join(parts[:-1])
            cls = (scope_q + "::" + qual) if scope_q else qual
            qname = cls + "::" + parts[-1]
        elif container_is_class:
            cls = self.container_qname_until_class()
            qname = (scope_q + "::" + parts[0]) if scope_q else parts[0]
            self.model.cls(cls).methods.add(parts[0])
        else:
            qname = (scope_q + "::" + parts[0]) if scope_q else parts[0]

        fn = FuncDef(qname, cls, self.file,
                     toks[name_start].line, ret, [], body)
        fn.requires_exprs = requires_exprs
        self.model.add_func(fn)
        return end

    def process_var(self, lo, hi, annos):
        """A declaration run [lo, hi) that ended at ';' or '=' with no
        function declarator: record member name/type + lock info."""
        toks = self.toks
        if not self.scope:
            return
        anno_ranges = [(o, c) for _, (o, c) in annos]

        def in_anno(ix):
            return any(o <= ix <= c for o, c in anno_ranges)

        ids = []
        depth = 0
        k = lo
        while k < hi:
            t = toks[k]
            if in_anno(k) or (t.kind == "id" and t.val in ANNOTATIONS):
                k += 1
                continue
            v = t.val
            if v == "<":
                nk = skip_angles(toks, k)
                inner = [x.val for x in toks[k:nk] if x.kind == "id"]
                if ids:
                    ids[-1] = (ids[-1][0], inner[-1] if inner else None)
                k = nk
                continue
            if t.kind == "id" and v not in STORAGE_IDS \
                    and v not in QUALIFIER_IDS:
                ids.append((v, None))
            k += 1
        if len(ids) < 2:
            return
        name = ids[-1][0]
        type_name, inner = ids[-2]
        if type_name in SMART_WRAPPERS and inner:
            type_name = inner
        cont = self.container()
        if type_name == "Mutex":
            cont.mutex_members.add(name)
        cont.member_types[name] = type_name
        for aname, (o, c) in annos:
            if aname in ("GUARDED_BY", "PT_GUARDED_BY"):
                cont.guarded[name] = toks[o + 1:c]


def split_args(toks, lo, hi):
    """Split toks[lo:hi) on top-level commas."""
    out = []
    cur = []
    depth = 0
    k = lo
    while k < hi:
        v = toks[k].val
        if v in ("(", "[", "{"):
            depth += 1
        elif v in (")", "]", "}"):
            depth -= 1
        if v == "," and depth == 0:
            if cur:
                out.append(cur)
            cur = []
        else:
            cur.append(toks[k])
        k += 1
    if cur:
        out.append(cur)
    return out


# ----------------------------------------------------------------------------
# Whole-program model

AcqEvent = namedtuple("AcqEvent", "lock line held")
CallEvent = namedtuple("CallEvent", "parts receiver chained line held "
                                    "close resolved")
BlockEvent = namedtuple("BlockEvent", "prim line held")
EscapeEvent = namedtuple("EscapeEvent", "member line")


class Model:
    def __init__(self):
        self.classes = {}          # qname -> ClassInfo
        self.funcs = {}            # qname -> [FuncDef]
        self.name_index = {}       # unqualified name -> set of qnames
        self.findings = []

    def cls(self, qname):
        if qname not in self.classes:
            self.classes[qname] = ClassInfo(qname)
        return self.classes[qname]

    def add_func(self, fn):
        self.funcs.setdefault(fn.qname, []).append(fn)
        base = fn.qname.rsplit("::", 1)[-1]
        self.name_index.setdefault(base, set()).add(fn.qname)

    # -- lookup helpers ------------------------------------------------------

    def class_by_short_name(self, short):
        hits = [q for q in self.classes
                if q == short or q.endswith("::" + short)]
        real = [q for q in hits if self.classes[q].member_types
                or self.classes[q].mutex_members or self.classes[q].methods]
        pool = real or hits
        return pool[0] if len(pool) == 1 else None

    def mutex_owner(self, member):
        owners = [q for q, c in self.classes.items()
                  if member in c.mutex_members]
        return owners[0] if len(owners) == 1 else None

    def containers_of(self, cls_qname):
        """cls_qname and each enclosing scope, innermost first."""
        out = []
        q = cls_qname
        while q:
            out.append(q)
            q = q.rsplit("::", 1)[0] if "::" in q else ""
        return out

    def resolve_lock(self, expr, fn):
        """Map a guard-argument token list to a stable lock identity."""
        vals = [t.val for t in expr]
        if vals[:2] == ["this", "->"]:
            vals = vals[2:]
        vals = [v for v in vals if v not in ("*", "&")]
        if not vals:
            return None
        # accessor call:  registryMu()
        if len(vals) >= 3 and vals[1] == "(" and vals[-1] == ")":
            target = self.resolve_simple_name(vals[0], fn)
            if target:
                return "fn:" + target
            return "fn:" + fn.file + "::" + vals[0]
        if len(vals) == 1:
            name = vals[0]
            for cont in self.containers_of(fn.cls or
                                           fn.qname.rsplit("::", 1)[0]):
                c = self.classes.get(cont)
                if c and name in c.mutex_members:
                    return cont + "::" + name
            owner = self.mutex_owner(name)
            if owner:
                return owner + "::" + name
            return fn.file + "::" + name
        if len(vals) == 3 and vals[1] in (".", "->"):
            recv, _, member = vals
            t = self.member_type_of(fn, recv)
            if t:
                cq = self.class_by_short_name(t)
                if cq and member in self.classes[cq].mutex_members:
                    return cq + "::" + member
            owner = self.mutex_owner(member)
            if owner:
                return owner + "::" + member
            return fn.file + "::" + ".".join((recv, member))
        if "::" in vals:
            short = "::".join(v for v in vals if v != "::")
            return short
        return fn.file + "::" + "".join(vals)

    def member_type_of(self, fn, name):
        for cont in self.containers_of(fn.cls or ""):
            c = self.classes.get(cont)
            if c and name in c.member_types:
                return c.member_types[name]
        return None

    def resolve_simple_name(self, name, fn):
        if fn.cls:
            for cont in self.containers_of(fn.cls):
                c = self.classes.get(cont)
                if c and name in c.methods:
                    return cont + "::" + name
                cand = cont + "::" + name
                if cand in self.funcs:
                    return cand
        cands = self.name_index.get(name, set())
        if len(cands) == 1:
            return next(iter(cands))
        # prefer a candidate in the same file
        same = {q for q in cands
                for d in self.funcs[q] if d.file == fn.file}
        if len(same) == 1:
            return next(iter(same))
        return None

    def resolve_call(self, ev, fn, events_by_close):
        parts = ev.parts
        m = parts[-1]
        if len(parts) >= 2:
            if parts[-2:] == ["FileLock", "acquire"]:
                return "<filelock>"
            suffix = "::".join(parts)
            cands = [q for q in self.name_index.get(m, set())
                     if q == suffix or q.endswith("::" + suffix)]
            if len(cands) == 1:
                return cands[0]
            return None
        if ev.receiver is None:
            return self.resolve_simple_name(m, fn)
        if ev.receiver == "this":
            if fn.cls:
                cand = fn.cls + "::" + m
                if cand in self.funcs or m in self.cls(fn.cls).methods:
                    return cand
            return None
        if ev.receiver == "<chained>":
            prev = events_by_close.get(ev.chained)
            if prev is None or prev.resolved[0] is None:
                return None
            ret_cls = self.return_class(prev.resolved[0])
            if ret_cls:
                cand = ret_cls + "::" + m
                if cand in self.funcs or m in self.cls(ret_cls).methods:
                    return cand
            return None
        if ev.receiver != "<expr>":
            t = self.member_type_of(fn, ev.receiver)
            if t:
                cq = self.class_by_short_name(t)
                if cq:
                    cand = cq + "::" + m
                    if cand in self.funcs or m in self.classes[cq].methods:
                        return cand
        if m in STD_METHODS:
            return None
        cands = self.name_index.get(m, set())
        if len(cands) == 1:
            return next(iter(cands))
        return None

    def return_class(self, qname):
        for d in self.funcs.get(qname, []):
            ids = [v for v in d.ret if re.match(r"[A-Za-z_]\w*$", v)
                   and v not in QUALIFIER_IDS and v not in ("std",)]
            if ids:
                cq = self.class_by_short_name(ids[-1])
                if cq:
                    return cq
        return None


# ----------------------------------------------------------------------------
# Function-body analysis


def analyze_body(fn, model):
    toks = fn.toks
    lo, hi = fn.body
    depth = 1
    guards = []                    # [lock, depth, var]
    events = []
    events_by_close = {}
    requires = [model.resolve_lock(e, fn) for e in fn.requires_exprs]
    fn.requires = [r for r in requires if r]

    def held():
        return tuple(dict.fromkeys(fn.requires +
                                   [g[0] for g in guards if g[0]]))

    j = lo
    while j < hi:
        t = toks[j]
        v = t.val
        if v == "{":
            depth += 1
            j += 1
            continue
        if v == "}":
            depth -= 1
            guards[:] = [g for g in guards if g[1] <= depth]
            j += 1
            continue
        if t.kind != "id":
            j += 1
            continue
        if v == "return":
            k = j + 1
            if k < hi and toks[k].val == "&":
                k += 1
            if k + 1 <= hi and toks[k].kind == "id" \
                    and k + 1 < hi and toks[k + 1].val == ";":
                events.append(EscapeEvent(toks[k].val, t.line))
            j += 1
            continue
        if v in CPP_KEYWORDS:
            j += 1
            continue
        if v in GUARD_TYPES or (v == "lsim" and j + 2 < hi
                                and toks[j + 1].val == "::"
                                and toks[j + 2].val in GUARD_TYPES):
            if v == "lsim":
                j += 2
            j = handle_guard(fn, model, toks, j, hi, depth, guards,
                             events, held)
            continue
        if v == "std" and j + 2 < hi and toks[j + 1].val == "::" \
                and toks[j + 2].val in GUARD_TYPES:
            j += 2
            j = handle_guard(fn, model, toks, j, hi, depth, guards,
                             events, held)
            continue
        # gather a qualified name chain
        parts = [v]
        k = j + 1
        while k + 1 < hi and toks[k].val == "::" and toks[k + 1].kind == "id":
            parts.append(toks[k + 1].val)
            k += 2
        if k < hi and toks[k].val == "<" and parts[-1] not in CV_OPS:
            nk = skip_angles(toks, k)
            if nk < hi and toks[nk].val == "(":
                k = nk
        if k < hi and toks[k].val == "(":
            m = parts[-1]
            close = skip_balanced(toks, k, "(", ")")
            receiver = None
            chained = None
            if j - 1 >= lo and toks[j - 1].val in (".", "->"):
                if toks[j - 2].kind == "id":
                    receiver = toks[j - 2].val
                elif toks[j - 2].val == ")":
                    receiver = "<chained>"
                    chained = j - 2
                else:
                    receiver = "<expr>"
            if m in CV_OPS:
                j = k + 1
                continue
            if receiver is not None and m in ("lock", "unlock") \
                    and any(g[2] == receiver for g in guards):
                # manual guard.lock()/unlock() for condvar patterns
                for g in guards:
                    if g[2] == receiver:
                        g[0] = None if m == "unlock" else g[3]
                j = k + 1
                continue
            if m in ("LSIM_FAULT", "LSIM_FAULT_ERRNO"):
                ev = CallEvent(["shouldFail"], None, None, t.line, held(),
                               close, [None])
                ev.resolved[0] = resolve_fault_hook(model)
                events.append(ev)
                events_by_close[close] = ev
                j = k + 1
                continue
            if parts[-2:] == ["FileLock", "acquire"] or \
                    (m == "acquire" and receiver == "FileLock"):
                events.append(BlockEvent("FileLock::acquire", t.line, held()))
                events.append(AcqEvent("<filelock>", t.line, held()))
                guards.append(["<filelock>", depth, "<filelock>",
                               "<filelock>"])
                j = k + 1
                continue
            ev = CallEvent(parts, receiver, chained, t.line, held(),
                           close, [None])
            events.append(ev)
            events_by_close[close] = ev
            j = k + 1
            continue
        j = k
    fn.events = events
    fn.events_by_close = events_by_close


def handle_guard(fn, model, toks, j, hi, depth, guards, events, held):
    """toks[j] is a guard type name; parse the declaration."""
    k = j + 1
    if k < hi and toks[k].val == "<":
        k = skip_angles(toks, k)
    if k < hi and toks[k].kind == "id" and k + 1 < hi \
            and toks[k + 1].val in ("(", "{"):
        open_v = toks[k + 1].val
        close_v = ")" if open_v == "(" else "}"
        close = skip_balanced(toks, k + 1, open_v, close_v)
        expr = [t for t in toks[k + 2:close]]
        lock = model.resolve_lock(expr, fn) if expr else None
        if lock:
            events.append(AcqEvent(lock, toks[j].line, held()))
        guards.append([lock, depth, toks[k].val, lock])
        return close + 1
    if k < hi and toks[k].val == "(":
        close = skip_balanced(toks, k, "(", ")")
        model.findings.append(Finding(
            "guard-temporary",
            "guard-temporary|" + fn.file,
            fn.file, toks[j].line,
            "%s:%d: unnamed %s temporary releases the lock on the same "
            "statement (in %s)" % (fn.file, toks[j].line, toks[j].val,
                                   fn.qname)))
        return close + 1
    return j + 1


def resolve_fault_hook(model):
    for q in model.name_index.get("shouldFail", set()):
        if "fault" in q:
            return q
    return None


# ----------------------------------------------------------------------------
# Whole-program passes


def fixpoint(model):
    """Propagate acquisition and blocking sets through the call graph."""
    acq = {}      # qname -> {lock: (file, line, chain tuple)}
    blk = {}      # qname -> {prim: (file, line, chain tuple)}
    defs = [(q, d) for q, ds in model.funcs.items() for d in ds if d.body]

    for q, d in defs:
        a = acq.setdefault(q, {})
        b = blk.setdefault(q, {})
        for ev in d.events:
            if isinstance(ev, AcqEvent):
                a.setdefault(ev.lock, (d.file, ev.line, (q,)))
            elif isinstance(ev, BlockEvent):
                b.setdefault(ev.prim, (d.file, ev.line, (q,)))
            elif isinstance(ev, CallEvent):
                ev.resolved[0] = ev.resolved[0] or \
                    model.resolve_call(ev, d, d.events_by_close)
                m = ev.parts[-1]
                if m in BLOCKING and ev.resolved[0] != "<filelock>":
                    target = ev.resolved[0]
                    if target is None or m == "atomicWriteFile":
                        b.setdefault(m, (d.file, ev.line, (q,)))

    changed = True
    while changed:
        changed = False
        for q, d in defs:
            a = acq[q]
            b = blk[q]
            for ev in d.events:
                if not isinstance(ev, CallEvent):
                    continue
                g = ev.resolved[0]
                if g is None or g == "<filelock>" or g not in acq:
                    continue
                for lock, (f, l, chain) in acq[g].items():
                    if lock not in a:
                        a[lock] = (f, l, (q,) + chain)
                        changed = True
                if ev.parts[-1] not in BLOCKING:
                    for prim, (f, l, chain) in blk[g].items():
                        if prim not in b:
                            b[prim] = (f, l, (q,) + chain)
                            changed = True
    return acq, blk


def collect_findings(model, acq, blk):
    edges = {}    # (l1, l2) -> dict(file,line,chain)
    defs = [(q, d) for q, ds in model.funcs.items() for d in ds if d.body]

    def add_edge(l1, l2, file, line, chain):
        edges.setdefault((l1, l2), {
            "file": file, "line": line, "chain": chain})

    for q, d in defs:
        cls_guarded = {}
        if d.cls and d.cls in model.classes:
            cls_guarded = model.classes[d.cls].guarded
        for ev in d.events:
            if isinstance(ev, AcqEvent):
                # l1 == ev.lock is a genuine self-edge: recursive
                # acquisition of a non-recursive mutex.
                for l1 in ev.held:
                    add_edge(l1, ev.lock, d.file, ev.line, (q,))
            elif isinstance(ev, BlockEvent):
                for l1 in ev.held:
                    model.findings.append(blocking_finding(
                        l1, ev.prim, d, ev.line, (q,)))
            elif isinstance(ev, CallEvent):
                m = ev.parts[-1]
                if m in BLOCKING and ev.held:
                    # Direct blocking primitive — findable whether or
                    # not the name resolves to a repo function.
                    for l1 in ev.held:
                        model.findings.append(blocking_finding(
                            l1, m, d, ev.line, (q,)))
                g = ev.resolved[0]
                if g is None or not ev.held:
                    continue
                if g in acq:
                    for lock, (f, l, chain) in acq[g].items():
                        for l1 in ev.held:
                            add_edge(l1, lock, d.file, ev.line,
                                     (q,) + chain)
                if m not in BLOCKING and g in blk:
                    for prim, (f, l, chain) in blk[g].items():
                        for l1 in ev.held:
                            model.findings.append(blocking_finding(
                                l1, prim, d, ev.line, (q,) + chain))
            elif isinstance(ev, EscapeEvent):
                if ev.member not in cls_guarded:
                    continue
                if not any(v in ("&", "*") for v in d.ret):
                    continue
                guard = model.resolve_lock(cls_guarded[ev.member], d)
                if guard and guard in d.requires:
                    continue
                model.findings.append(Finding(
                    "guard-escape",
                    "guard-escape|%s|%s" % (guard or "?", d.file),
                    d.file, ev.line,
                    "%s:%d: %s returns a reference to '%s' which is "
                    "GUARDED_BY(%s) without a REQUIRES contract"
                    % (d.file, ev.line, d.qname, ev.member,
                       guard or "?")))

    detect_cycles(model, edges)
    return edges


def blocking_finding(lock, prim, d, line, chain):
    return Finding(
        "blocking-under-lock",
        "blocking-under-lock|%s|%s|%s" % (lock, prim, d.file),
        d.file, line,
        "%s:%d: %s may block in '%s' while holding %s (via %s)"
        % (d.file, line, chain[0], prim, lock, " -> ".join(chain)))


def detect_cycles(model, edges):
    """Tarjan SCC over the lock graph; any SCC of size >= 2 (or a
    self-edge) is a potential deadlock."""
    graph = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())

    index = {}
    low = {}
    stack = []
    on_stack = set()
    counter = [0]
    sccs = []

    def strongconnect(v):
        work = [(v, iter(sorted(graph[v])))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph[w]))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(scc)

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)

    for scc in sccs:
        self_loop = len(scc) == 1 and (scc[0], scc[0]) in edges
        if len(scc) < 2 and not self_loop:
            continue
        nodes = sorted(scc)
        chains = []
        for a in nodes:
            for b in nodes:
                e = edges.get((a, b))
                if e and (a != b or self_loop):
                    chains.append("%s -> %s at %s:%d (%s)"
                                  % (a, b, e["file"], e["line"],
                                     " -> ".join(e["chain"])))
        site = None
        for a in nodes:
            for b in nodes:
                if (a, b) in edges:
                    site = edges[(a, b)]
                    break
            if site:
                break
        model.findings.append(Finding(
            "deadlock-cycle",
            "deadlock-cycle|" + ",".join(nodes),
            site["file"] if site else "?",
            site["line"] if site else 0,
            "potential deadlock: lock-order cycle {%s}; %s"
            % (", ".join(nodes), "; ".join(chains))))


# ----------------------------------------------------------------------------
# Driver


def analyze_tree(root, rel_prefix, files=None):
    model = Model()
    paths = files
    if paths is None:
        paths = sorted(p for p in root.rglob("*")
                       if p.suffix in (".cc", ".hh", ".h", ".cpp", ".hpp"))
    parsed = []
    for p in paths:
        rel = str(p.relative_to(REPO)) if p.is_relative_to(REPO) else str(p)
        if rel in EXCLUDE:
            continue
        toks = lex(p.read_text(errors="replace"))
        parser = FileParser(rel, toks, model)
        parser.parse()
        parsed.append((rel, toks))
    # attach tokens to funcdefs for body analysis
    tok_by_file = dict(parsed)
    for q, ds in model.funcs.items():
        # REQUIRES usually lives on the header declaration; fold every
        # declaration's annotations into the definition before body
        # analysis.
        merged = [e for d in ds for e in d.requires_exprs]
        for d in ds:
            d.toks = tok_by_file.get(d.file)
            if merged:
                d.requires_exprs = merged
    for q, ds in sorted(model.funcs.items()):
        for d in ds:
            if d.body and d.toks is not None:
                analyze_body(d, model)
            else:
                d.events = []
                d.events_by_close = {}
    acq, blk = fixpoint(model)
    edges = collect_findings(model, acq, blk)
    return model, acq, blk, edges


def load_allowlist(path):
    limits = {}
    if not path.exists():
        return limits
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            key, count = line.rsplit(None, 1)
            limits[key] = int(count)
        except ValueError:
            print("analyze: malformed allowlist line: %r" % raw,
                  file=sys.stderr)
            sys.exit(2)
    return limits


def save_allowlist(path, counts):
    lines = [
        "# tools/analyze allowlist — grandfathered concurrency findings.",
        "# Format: <finding key> <count>. Counts may only go down;",
        "# refresh with tools/analyze/analyze.py --update after burning",
        "# an entry down. New keys or higher counts fail the build.",
        "",
    ]
    for key in sorted(counts):
        lines.append("%s %d" % (key, counts[key]))
    path.write_text("\n".join(lines) + "\n")


def report_json(path, model, acq, edges):
    doc = {
        "locks": sorted({l for (a, b) in edges for l in (a, b)} |
                        {l for m in acq.values() for l in m}),
        "edges": [
            {"from": a, "to": b, "site": "%s:%d" % (e["file"], e["line"]),
             "chain": list(e["chain"])}
            for (a, b), e in sorted(edges.items())
        ],
        "functions_analyzed": sum(
            1 for ds in model.funcs.values() for d in ds if d.body),
        "findings": [
            {"rule": f.rule, "key": f.key, "file": f.file,
             "line": f.line, "message": f.message}
            for f in model.findings
        ],
    }
    text = json.dumps(doc, indent=2, sort_keys=True)
    if path == "-":
        print(text)
    else:
        Path(path).write_text(text + "\n")


def run_selftest():
    if not FIXTURE_DIR.is_dir():
        print("analyze --selftest: missing %s" % FIXTURE_DIR,
              file=sys.stderr)
        return 2
    model, acq, blk, edges = analyze_tree(FIXTURE_DIR, "tests")
    got = {}
    for f in model.findings:
        got.setdefault(f.file, {}).setdefault(f.rule, 0)
        got[f.file][f.rule] += 1
    want = {}
    for p in sorted(FIXTURE_DIR.glob("*.cc")):
        rel = str(p.relative_to(REPO))
        want.setdefault(rel, {})
        for m in re.finditer(r"//\s*EXPECT-FINDING:\s*([\w-]+)",
                             p.read_text()):
            want[rel].setdefault(m.group(1), 0)
            want[rel][m.group(1)] += 1
    ok = True
    for rel in sorted(want):
        w = want[rel]
        g = got.get(rel, {})
        if w != g:
            ok = False
            print("analyze --selftest: %s: expected %s, got %s"
                  % (rel, w or "{}", g or "{}"), file=sys.stderr)
            for f in model.findings:
                if f.file == rel:
                    print("  found: [%s] %s" % (f.rule, f.message),
                          file=sys.stderr)
    stray = set(got) - set(want)
    if stray:
        ok = False
        print("analyze --selftest: findings in unexpected files: %s"
              % sorted(stray), file=sys.stderr)
    if ok:
        total = sum(sum(r.values()) for r in want.values())
        print("analyze --selftest: ok (%d fixtures, %d planted findings "
              "all detected, clean fixture clean)"
              % (len(want), total))
        return 0
    return 1


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--json", metavar="PATH",
                    help="write the lock graph + findings as JSON "
                         "('-' for stdout)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the allowlist with current counts")
    ap.add_argument("--selftest", action="store_true",
                    help="run against tests/analyze_fixtures/")
    ap.add_argument("--root", metavar="DIR",
                    help="analyze DIR instead of src/ (no allowlist)")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args(argv)

    if args.selftest:
        return run_selftest()

    root = Path(args.root).resolve() if args.root else SRC_DIR
    model, acq, blk, edges = analyze_tree(root, "src")

    if args.json:
        report_json(args.json, model, acq, edges)

    if args.verbose:
        for (a, b), e in sorted(edges.items()):
            print("edge: %s -> %s  (%s:%d via %s)"
                  % (a, b, e["file"], e["line"], " -> ".join(e["chain"])))

    counts = {}
    by_key = {}
    for f in model.findings:
        counts[f.key] = counts.get(f.key, 0) + 1
        by_key.setdefault(f.key, []).append(f)

    if args.root:
        for f in model.findings:
            print("[%s] %s" % (f.rule, f.message))
        return 1 if model.findings else 0

    limits = load_allowlist(ALLOWLIST)
    failed = False
    for key in sorted(counts):
        have = counts[key]
        limit = limits.get(key, 0)
        if have > limit:
            failed = True
            print("analyze: %s: %d finding(s), allowlist permits %d"
                  % (key, have, limit), file=sys.stderr)
            for f in by_key[key][:8]:
                print("  " + f.message, file=sys.stderr)
    for key in sorted(limits):
        have = counts.get(key, 0)
        if have < limits[key]:
            if args.update:
                continue
            failed = True
            print("analyze: %s: improved to %d (allowlist says %d) — "
                  "run tools/analyze/analyze.py --update to lock it in"
                  % (key, have, limits[key]), file=sys.stderr)

    if args.update:
        save_allowlist(ALLOWLIST, counts)
        print("analyze: allowlist updated (%d keys)" % len(counts))
        return 0

    if failed:
        return 1
    n_defs = sum(1 for ds in model.funcs.values() for d in ds if d.body)
    print("analyze: ok (%d functions, %d lock-order edges, "
          "%d allowlisted finding(s))"
          % (n_defs, len(edges), sum(counts.values())))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
