#!/usr/bin/env python3
"""Compare BENCH_replay.json files across runs and keep a history.

Diffs two or more bench_replay_perf outputs (oldest first) and
prints per-grid speedup deltas, so the perf trajectory is visible
across commits instead of only a static floor:

    bench_trend.py old.json [mid.json ...] new.json
    bench_trend.py --fail-below 0.6 baseline.json current.json

Grids are matched by their technology-point count (plus the "dense"
grid when both files carry one). For every metric present in both
the first and the last file, the tool prints a quality ratio:
last/first for speedups (higher is better) and first/last for
latencies (lower is better) — so a ratio below 1 always reads
"regressed". With --fail-below R it exits 1 when any gated ratio
drops below R. Serve warm latency is additionally guarded by
--warm-ms-ceiling: the relative gate only fires when the absolute
latency also exceeds the ceiling, so CI-runner noise on a
sub-millisecond path cannot flake the job. Files written by older
bench versions simply lack the newer metrics and are compared on
what they have.

History mode accumulates per-commit records and renders a
standalone HTML/SVG trend page (no JS, no external assets):

    bench_trend.py --history DIR --add BENCH_replay.json --label SHA
    bench_trend.py --history DIR --html trend.html

CI restores DIR from the actions cache, appends the fresh record,
renders the page, and uploads it as an artifact — so the full perf
trajectory of the branch is one click away.

Exit codes: 0 ok, 1 regression (with --fail-below), 2 usage/input.
"""

import argparse
import html
import json
import os
import re
import sys


def load(path):
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_trend: cannot read '{path}': {err}")
    if doc.get("bench") != "replay_perf":
        sys.exit(f"bench_trend: '{path}' is not a "
                 "bench_replay_perf output")
    return doc


def grid_key(grid):
    return int(grid["points"])


def metrics(doc):
    """{(label, metric): value} for everything comparable."""
    out = {}
    for grid in doc.get("grids", []):
        label = f"{grid_key(grid)}pt"
        out[(label, "speedup")] = grid.get("speedup")
        out[(label, "kernel_speedup")] = grid.get("kernel_speedup")
    dense = doc.get("dense")
    if dense:
        out[("dense", "speedup")] = dense.get("speedup")
        out[("dense", "kernel_speedup")] = dense.get("kernel_speedup")
    for entry in doc.get("threaded", []):
        out[(f"{entry['threads']}thr", "threaded_speedup")] = \
            entry.get("speedup")
    serve = doc.get("serve")
    if serve:
        # Daemon request latency, ms (lower is better). Warm latency
        # is gated (see LOWER_IS_BETTER + --warm-ms-ceiling); cold
        # latency includes one-off phase-1 simulation and is
        # report-only.
        out[("serve", "warm_request_ms")] = \
            serve.get("warm_request_ms")
        out[("serve", "cold_request_ms")] = \
            serve.get("cold_request_ms")
        # Socket front-door warm latency: a full AF_UNIX
        # submit-and-wait round trip. Report-only — it layers
        # protocol framing and completion-board polling on top of
        # the gated warm path.
        out[("serve", "socket_warm_request_ms")] = \
            serve.get("socket_warm_request_ms")
    return {k: v for k, v in out.items() if v is not None}


# (label, metric) pairs the --fail-below gate judges: the big-grid
# engine-vs-scalar speedups, the dense kernel-vs-virtual speedup,
# and the daemon's warm request latency. Micro grids (1/4 points)
# finish in microseconds and their ratios swing tens of percent run
# to run; threaded speedups depend on runner core counts, which the
# static --min-threaded-speedup floor already covers. All are still
# reported.
GATED = (("8pt", "speedup"), ("20pt", "speedup"),
         ("dense", "speedup"), ("dense", "kernel_speedup"),
         ("serve", "warm_request_ms"))

# Metrics where smaller values are better: the quality ratio is
# inverted (first/last) so < 1 still means "regressed".
LOWER_IS_BETTER = frozenset({"warm_request_ms", "cold_request_ms",
                             "socket_warm_request_ms"})


def quality_ratio(key, first, last):
    """>1 improved, <1 regressed, for either metric direction."""
    _, metric = key
    if metric in LOWER_IS_BETTER:
        return first / last if last else float("inf")
    return last / first if first else float("inf")


# ------------------------------------------------------- history

RECORD_RE = re.compile(r"^(\d{4})-(.+)\.json$")


def history_records(directory):
    """[(label, metrics)] sorted by record index."""
    entries = []
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    for name in names:
        m = RECORD_RE.match(name)
        if not m:
            continue
        doc = load(os.path.join(directory, name))
        entries.append((int(m.group(1)), m.group(2), metrics(doc)))
    entries.sort()
    return [(label, snap) for _, label, snap in entries]


def history_add(directory, path, label):
    doc = load(path)  # validates before anything lands in DIR
    os.makedirs(directory, exist_ok=True)
    taken = [int(m.group(1)) for m in
             (RECORD_RE.match(n) for n in os.listdir(directory)) if m]
    index = max(taken) + 1 if taken else 0
    label = re.sub(r"[^A-Za-z0-9._-]", "_", label) or "run"
    dest = os.path.join(directory, f"{index:04d}-{label}.json")
    with open(dest, "w") as fh:
        json.dump(doc, fh)
    print(f"bench_trend: recorded {dest}")


# ----------------------------------------------------- trend page

PALETTE = ("#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
           "#9467bd", "#8c564b", "#e377c2", "#17becf")


def svg_chart(title, unit, series, x_labels):
    """One inline SVG line chart. series: [(name, [value|None])]."""
    width, height = 840, 280
    left, right, top, bottom = 56, 200, 28, 36
    plot_w = width - left - right
    plot_h = height - top - bottom

    values = [v for _, vs in series for v in vs if v is not None]
    if not values:
        return ""
    vmax = max(values) * 1.08 or 1.0
    vmin = 0.0
    n = max(len(vs) for _, vs in series)

    def x(i):
        if n <= 1:
            return left + plot_w / 2
        return left + plot_w * i / (n - 1)

    def y(v):
        return top + plot_h * (1 - (v - vmin) / (vmax - vmin))

    parts = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
             f'height="{height}" role="img">',
             f'<text x="{left}" y="16" class="title">'
             f'{html.escape(title)}</text>']
    # Axes + horizontal gridlines with value labels.
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        v = vmin + (vmax - vmin) * frac
        yy = y(v)
        parts.append(f'<line x1="{left}" y1="{yy:.1f}" '
                     f'x2="{left + plot_w}" y2="{yy:.1f}" '
                     'class="grid"/>')
        parts.append(f'<text x="{left - 6}" y="{yy + 4:.1f}" '
                     f'class="tick" text-anchor="end">'
                     f'{v:.2f}</text>')
    # X tick labels: first, last, and every ~5th in between.
    step = max(1, (n - 1) // 6) if n > 1 else 1
    for i in range(0, n, step):
        parts.append(f'<text x="{x(i):.1f}" '
                     f'y="{top + plot_h + 16}" class="tick" '
                     f'text-anchor="middle">'
                     f'{html.escape(x_labels[i][:10])}</text>')
    for idx, (name, vs) in enumerate(series):
        color = PALETTE[idx % len(PALETTE)]
        points = " ".join(f"{x(i):.1f},{y(v):.1f}"
                          for i, v in enumerate(vs)
                          if v is not None)
        if points:
            parts.append(f'<polyline points="{points}" fill="none" '
                         f'stroke="{color}" stroke-width="2"/>')
        for i, v in enumerate(vs):
            if v is not None:
                parts.append(f'<circle cx="{x(i):.1f}" '
                             f'cy="{y(v):.1f}" r="2.5" '
                             f'fill="{color}"/>')
        last = next((v for v in reversed(vs) if v is not None), None)
        legend_y = top + 14 * idx
        parts.append(f'<rect x="{left + plot_w + 12}" '
                     f'y="{legend_y - 8}" width="10" height="10" '
                     f'fill="{color}"/>')
        tail = f" ({last:.2f}{unit})" if last is not None else ""
        parts.append(f'<text x="{left + plot_w + 26}" '
                     f'y="{legend_y + 1}" class="legend">'
                     f'{html.escape(name + tail)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def render_html(records, out_path):
    if not records:
        sys.exit("bench_trend: history is empty, nothing to render")
    x_labels = [label for label, _ in records]

    def series_for(metric):
        keys = sorted({k for _, snap in records for k in snap
                       if k[1] == metric})
        return [(key[0], [snap.get(key) for _, snap in records])
                for key in keys]

    charts = [
        svg_chart("Engine vs scalar speedup", "x",
                  series_for("speedup"), x_labels),
        svg_chart("Kernel vs virtual-dispatch speedup", "x",
                  series_for("kernel_speedup"), x_labels),
        svg_chart("Serve request latency", " ms",
                  [(name, [snap.get(("serve", name))
                           for _, snap in records])
                   for name in ("cold_request_ms",
                                "warm_request_ms")],
                  x_labels),
        svg_chart("Threaded speedup", "x",
                  series_for("threaded_speedup"), x_labels),
    ]
    body = "\n".join(c for c in charts if c)
    page = f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>lsim perf trend</title>
<style>
  body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2em;
          color: #222; }}
  h1 {{ font-size: 1.3em; }}
  svg {{ display: block; margin-bottom: 1.5em; }}
  .title {{ font-size: 13px; font-weight: 600; }}
  .tick {{ font-size: 10px; fill: #666; }}
  .legend {{ font-size: 11px; }}
  .grid {{ stroke: #ddd; stroke-width: 1; }}
</style>
</head>
<body>
<h1>lsim replay perf trend</h1>
<p>{len(records)} record(s), oldest first:
{html.escape(x_labels[0])} &rarr; {html.escape(x_labels[-1])}.
Speedups: higher is better. Latency: lower is better.</p>
{body}
</body>
</html>
"""
    with open(out_path, "w") as fh:
        fh.write(page)
    print(f"bench_trend: wrote {out_path} "
          f"({len(records)} record(s))")


# ------------------------------------------------------------ main

def main():
    parser = argparse.ArgumentParser(
        description="diff BENCH_replay.json files (oldest first) "
                    "and maintain a rendered history")
    parser.add_argument("files", nargs="*",
                        help="bench outputs, oldest first")
    parser.add_argument("--fail-below", type=float, metavar="R",
                        help="exit 1 when any gated quality ratio "
                             "is below R")
    parser.add_argument("--warm-ms-ceiling", type=float,
                        metavar="MS", default=50.0,
                        help="serve warm latency only fails the "
                             "gate when it also exceeds MS "
                             "(default 50; absolute guard against "
                             "CI-runner noise)")
    parser.add_argument("--history", metavar="DIR",
                        help="per-commit record directory")
    parser.add_argument("--add", metavar="FILE",
                        help="append FILE to --history DIR")
    parser.add_argument("--label", default="run",
                        help="record label for --add (e.g. git SHA)")
    parser.add_argument("--html", metavar="OUT",
                        help="render --history DIR as a standalone "
                             "HTML/SVG trend page")
    args = parser.parse_args()

    if args.add or args.html:
        if not args.history:
            parser.error("--add/--html require --history DIR")
        if args.add:
            history_add(args.history, args.add, args.label)
        if args.html:
            render_html(history_records(args.history), args.html)
        if not args.files:
            return 0
    if len(args.files) < 2:
        parser.error("need at least two files to compare")

    docs = [load(path) for path in args.files]
    per_file = [metrics(doc) for doc in docs]
    first, last = per_file[0], per_file[-1]

    keys = [k for k in first if k in last]
    if not keys:
        sys.exit("bench_trend: the first and last file share no "
                 "comparable metrics")

    name_w = max(len(f"{label} {metric}") for label, metric in keys)
    headers = " ".join(f"{i:>9}" for i in range(len(args.files)))
    print(f"{'grid metric':<{name_w}} {headers} {'ratio':>7}")
    failures = []
    for key in keys:
        label, metric = key
        cells = []
        for snapshot in per_file:
            value = snapshot.get(key)
            cells.append(f"{value:9.2f}" if value is not None
                         else f"{'-':>9}")
        ratio = quality_ratio(key, first[key], last[key])
        print(f"{label + ' ' + metric:<{name_w}} "
              f"{' '.join(cells)} {ratio:6.2f}x")
        if (args.fail_below is None or key not in GATED
                or ratio >= args.fail_below):
            continue
        if metric == "warm_request_ms" and \
                last[key] <= args.warm_ms_ceiling:
            # Relative regression but still comfortably fast in
            # absolute terms: report, don't flake the job.
            print(f"bench_trend: note: {label} {metric} ratio "
                  f"{ratio:.2f}x is under --fail-below but "
                  f"{last[key]:.2f} ms is within the "
                  f"{args.warm_ms_ceiling:.0f} ms ceiling")
            continue
        failures.append((label, metric, ratio))

    if failures:
        for label, metric, ratio in failures:
            print(f"bench_trend: {label} {metric} fell to "
                  f"{ratio:.2f}x of the baseline "
                  f"(--fail-below {args.fail_below})",
                  file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
