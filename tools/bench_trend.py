#!/usr/bin/env python3
"""Compare BENCH_replay.json files across runs.

Diffs two or more bench_replay_perf outputs (oldest first) and
prints per-grid speedup deltas, so the perf trajectory is visible
across commits instead of only a static floor:

    bench_trend.py old.json [mid.json ...] new.json
    bench_trend.py --fail-below 0.6 baseline.json current.json

Grids are matched by their technology-point count (plus the "dense"
grid when both files carry one). For every metric present in both
the first and the last file, the tool prints the ratio last/first;
with --fail-below R it exits 1 when any per-grid engine-vs-scalar
speedup ratio (or the dense kernel-vs-virtual ratio) drops below R.
Files written by older bench versions simply lack the newer metrics
and are compared on what they have.

CI feeds this the previous run's artifact (restored from the
actions cache) and the fresh build/BENCH_replay.json, so every push
is judged against the run before it, not only the static
--min-speedup floor.

Exit codes: 0 ok, 1 regression (with --fail-below), 2 usage/input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_trend: cannot read '{path}': {err}")
    if doc.get("bench") != "replay_perf":
        sys.exit(f"bench_trend: '{path}' is not a "
                 "bench_replay_perf output")
    return doc


def grid_key(grid):
    return int(grid["points"])


def metrics(doc):
    """{(label, metric): value} for everything comparable."""
    out = {}
    for grid in doc.get("grids", []):
        label = f"{grid_key(grid)}pt"
        out[(label, "speedup")] = grid.get("speedup")
        out[(label, "kernel_speedup")] = grid.get("kernel_speedup")
    dense = doc.get("dense")
    if dense:
        out[("dense", "speedup")] = dense.get("speedup")
        out[("dense", "kernel_speedup")] = dense.get("kernel_speedup")
    for entry in doc.get("threaded", []):
        out[(f"{entry['threads']}thr", "threaded_speedup")] = \
            entry.get("speedup")
    serve = doc.get("serve")
    if serve:
        # Daemon request latency (ms, lower is better): recorded so
        # the serving-path trajectory is visible, but not gated —
        # absolute latency swings with runner hardware.
        out[("serve", "warm_request_ms")] = \
            serve.get("warm_request_ms")
        out[("serve", "cold_request_ms")] = \
            serve.get("cold_request_ms")
    return {k: v for k, v in out.items() if v is not None}


# (label, metric) pairs the --fail-below gate judges: the big-grid
# engine-vs-scalar speedups and the dense kernel-vs-virtual speedup.
# Micro grids (1/4 points) finish in microseconds and their ratios
# swing tens of percent run to run; threaded speedups depend on
# runner core counts, which the static --min-threaded-speedup floor
# already covers. All are still reported.
GATED = (("8pt", "speedup"), ("20pt", "speedup"),
         ("dense", "speedup"), ("dense", "kernel_speedup"))


def main():
    parser = argparse.ArgumentParser(
        description="diff BENCH_replay.json files (oldest first)")
    parser.add_argument("files", nargs="+",
                        help="bench outputs, oldest first")
    parser.add_argument("--fail-below", type=float, metavar="R",
                        help="exit 1 when any gated last/first "
                             "speedup ratio is below R")
    args = parser.parse_args()
    if len(args.files) < 2:
        parser.error("need at least two files to compare")

    docs = [load(path) for path in args.files]
    per_file = [metrics(doc) for doc in docs]
    first, last = per_file[0], per_file[-1]

    keys = [k for k in first if k in last]
    if not keys:
        sys.exit("bench_trend: the first and last file share no "
                 "comparable metrics")

    name_w = max(len(f"{label} {metric}") for label, metric in keys)
    headers = " ".join(f"{i:>9}" for i in range(len(args.files)))
    print(f"{'grid metric':<{name_w}} {headers} {'ratio':>7}")
    failures = []
    for key in keys:
        label, metric = key
        cells = []
        for snapshot in per_file:
            value = snapshot.get(key)
            cells.append(f"{value:9.2f}" if value is not None
                         else f"{'-':>9}")
        ratio = last[key] / first[key] if first[key] else float("inf")
        print(f"{label + ' ' + metric:<{name_w}} "
              f"{' '.join(cells)} {ratio:6.2f}x")
        if (args.fail_below is not None and key in GATED
                and ratio < args.fail_below):
            failures.append((label, metric, ratio))

    if failures:
        for label, metric, ratio in failures:
            print(f"bench_trend: {label} {metric} fell to "
                  f"{ratio:.2f}x of the baseline "
                  f"(--fail-below {args.fail_below})",
                  file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
