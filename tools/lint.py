#!/usr/bin/env python3
"""Project-invariant linter for lsim (stdlib only; run by CI).

Machine-checks the repo's hard-won correctness invariants, which
otherwise live only in comments and review memory:

  atomic-write    Persisted files under src/store, src/serve, and
                  src/obs must go through lsim::atomicWriteFile — raw
                  std::ofstream or fopen() writes can be observed
                  half-written by the concurrent pollers those
                  subsystems serve. Additionally, ANY src/ file that
                  handles the polled snapshot names metrics.json or
                  status.json must not open raw write streams at all:
                  those two files are read by external watchers
                  mid-write, so a torn write there is a protocol bug
                  no matter which subsystem it lives in.

  no-fatal        Library code under src/ reports errors by throwing;
                  process-exiting fatal()/die() belong to the CLI and
                  benches, where there is no caller to recover. The
                  existing call sites are grandfathered in
                  tools/lint_allowlist.txt, a burn-down ratchet whose
                  per-file counts may only decrease (run with
                  --update after converting a site to an exception).

  no-raw-mutex    Library code locks through the annotated
                  lsim::Mutex / MutexLock / CondVar wrappers
                  (common/mutex.hh) — never raw std::mutex,
                  std::condition_variable, or std:: lock guards.
                  The wrappers carry the clang thread-safety
                  capability annotations and give tools/analyze a
                  uniform acquisition syntax; a raw std::mutex is
                  invisible to both. Only common/mutex.hh itself may
                  touch <mutex>.

  signal-safety   Signal handlers may only set lock-free atomic
                  flags: no calls, no locks, no allocation (all
                  undefined behavior in async-signal context), and
                  the flag type's lock-freedom must be asserted via
                  static_assert(...is_always_lock_free...).

  include-guard   Headers use #ifndef guards derived from their path
                  (src/api/parallel.hh -> LSIM_API_PARALLEL_HH), and
                  never #pragma once, so a moved header cannot
                  silently shadow another.

  fault-point     Every I/O call site in the serve/store tier
                  (atomicWriteFile, FileLock::acquire, raw socket
                  recv/send/accept4 under src/store and src/serve)
                  must sit in the shadow of a registered LSIM_FAULT
                  point, so the fault-injection layer's coverage of
                  failure domains stays complete by construction —
                  new I/O cannot land without deciding how it fails.

  fault-macro     Fault points are consulted only through the
                  LSIM_FAULT / LSIM_FAULT_ERRNO macros; calling
                  fault::detail::shouldFail directly bypasses the
                  armed() fast path that keeps disabled runs at a
                  single relaxed atomic load.

  determinism     Replay and kernel code (src/replay, src/sleep) is
                  bit-reproducible by contract: no rand()/srand(),
                  no std::random_device, no wall-clock reads.
                  src/obs is deliberately NOT in this set: the
                  observability layer exists to measure wall-clock
                  latency, so it owns the clock reads and the
                  deterministic modules stay clock-free by calling
                  into it (or not at all).

Exit status 0 when clean, 1 on any violation.
"""

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ALLOWLIST = REPO / "tools" / "lint_allowlist.txt"

SRC_EXTS = {".cc", ".hh", ".h", ".cpp"}

# ----------------------------------------------------------- helpers


def strip_code(text):
    """Blank out comments and string/char literals, preserving line
    structure, so token scans cannot match documentation or message
    text. Handles //, /* */, "..." (with escapes), '...', and the
    R"delim(...)delim" raw strings gtest specs love."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(c if c == "\n" else " "
                               for c in text[i:j]))
            i = j
        elif ch == "R" and nxt == '"':
            m = re.match(r'R"([^()\s\\]{0,16})\(', text[i:])
            if not m:
                out.append(ch)
                i += 1
                continue
            close = ")" + m.group(1) + '"'
            j = text.find(close, i + m.end())
            j = n if j == -1 else j + len(close)
            out.append("".join(c if c == "\n" else " "
                               for c in text[i:j]))
            i = j
        elif ch in "\"'":
            if ch == "'" and i > 0 and text[i - 1].isdigit():
                # C++14 digit separator (500'000), not a char literal
                out.append(" ")
                i += 1
                continue
            quote = ch
            j = i + 1
            while j < n and text[j] not in (quote, "\n"):
                j += 2 if text[j] == "\\" else 1
            if j >= n or text[j] == "\n":
                # no close on this line: a stray quote, not a literal
                out.append(ch)
                i += 1
                continue
            j += 1
            out.append(quote + " " * (j - i - 2) + quote)
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


class Linter:
    def __init__(self):
        self.violations = []

    def report(self, path, line, rule, message):
        rel = path.relative_to(REPO)
        self.violations.append(f"{rel}:{line}: [{rule}] {message}")

    # ---------------------------------------------- rule: atomic-write

    def check_atomic_write(self, path, code):
        for m in re.finditer(r"\bofstream\b|\bfopen\s*\(", code):
            self.report(
                path, line_of(code, m.start()), "atomic-write",
                "raw file write in a persisting subsystem; route "
                "through lsim::atomicWriteFile (common/files.hh) so "
                "concurrent readers never see a torn file")

    def check_snapshot_write(self, path, code, text):
        """metrics.json / status.json are polled by external watchers;
        a file that handles those names must never open a raw write
        stream, wherever in src/ it lives."""
        if not re.search(r"\b(?:metrics|status)\.json\b", text):
            return
        for m in re.finditer(r"\bofstream\b|\bfopen\s*\(", code):
            self.report(
                path, line_of(code, m.start()), "atomic-write",
                "this file handles metrics.json/status.json, which "
                "concurrent pollers read mid-write; persist them via "
                "lsim::atomicWriteFile, not a raw stream")

    # -------------------------------------------------- rule: no-fatal

    def count_fatal(self, code):
        return len(re.findall(r"\b(?:fatal|die)\s*\(", code))

    # --------------------------------------------- rule: no-raw-mutex

    RAW_MUTEX_PATTERN = re.compile(
        r"\bstd\s*::\s*(mutex|recursive_mutex|timed_mutex|"
        r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
        r"condition_variable|condition_variable_any|lock_guard|"
        r"unique_lock|scoped_lock|shared_lock)\b")
    RAW_MUTEX_INCLUDES = re.compile(
        r"#\s*include\s*<(mutex|condition_variable|shared_mutex)>")

    def check_raw_mutex(self, path, code):
        for m in self.RAW_MUTEX_PATTERN.finditer(code):
            self.report(
                path, line_of(code, m.start()), "no-raw-mutex",
                f"raw std::{m.group(1)}; use the annotated "
                "lsim::Mutex / MutexLock / CondVar wrappers "
                "(common/mutex.hh) so clang thread-safety analysis "
                "and tools/analyze can see the lock")
        for m in self.RAW_MUTEX_INCLUDES.finditer(code):
            self.report(
                path, line_of(code, m.start()), "no-raw-mutex",
                f"#include <{m.group(1)}> outside common/mutex.hh; "
                "include common/mutex.hh instead")

    # --------------------------------------------- rule: signal-safety

    def check_signal_safety(self, path, code):
        handlers = set(
            m.group(1)
            for m in re.finditer(
                r"(?:std::)?signal\s*\(\s*SIG\w+\s*,\s*(\w+)\s*\)",
                code))
        handlers |= set(
            m.group(1)
            for m in re.finditer(r"sa_handler\s*=\s*&?(\w+)", code))
        handlers.discard("SIG_IGN")
        handlers.discard("SIG_DFL")
        if not handlers:
            return
        if "is_always_lock_free" not in code:
            self.report(
                path, 1, "signal-safety",
                "registers signal handler(s) %s but never "
                "static_asserts std::atomic<...>::is_always_lock_free "
                "for the flag they set" % ", ".join(sorted(handlers)))
        for name in sorted(handlers):
            m = re.search(
                r"\bvoid\s+" + re.escape(name) + r"\s*\(\s*int\b[^)]*\)"
                r"\s*(?:noexcept\s*)?\{", code)
            if not m:
                continue  # defined elsewhere; checked in its own file
            body_start = m.end()
            depth, j = 1, body_start
            while j < len(code) and depth > 0:
                depth += {"{": 1, "}": -1}.get(code[j], 0)
                j += 1
            body = code[body_start:j - 1]
            self.check_handler_body(path, name, body,
                                    line_of(code, body_start), code)

    def check_handler_body(self, path, name, body, first_line, code):
        allowed = re.compile(
            r"^(?:\w+(?:\.\w+)*\.store\s*\([^;]*\)"  # flag.store(...)
            r"|\w+\s*=\s*(?:true|false|0|1)"         # flag = true
            r"|\(void\)\s*\w+"                       # (void)signum
            r")$")
        for i, raw in enumerate(body.split(";")):
            stmt = " ".join(raw.split())
            if not stmt:
                continue
            if not allowed.match(stmt):
                self.report(
                    path, first_line, "signal-safety",
                    f"handler '{name}' contains '{stmt.strip()}'; "
                    "signal handlers may only set lock-free atomic "
                    "flags (no calls, locks, or allocation — all "
                    "async-signal-unsafe)")
                return
            m = re.match(r"(\w+)(?:\.\w+)*\.store|(\w+)\s*=", stmt)
            flag = m.group(1) or m.group(2) if m else None
            if flag and not re.search(
                    r"std::atomic<[^>]*>\s+" + re.escape(flag),
                    code):
                self.report(
                    path, first_line, "signal-safety",
                    f"handler '{name}' writes '{flag}', which is not "
                    "declared std::atomic<...> in this file")

    # --------------------------------------------- rule: include-guard

    def check_include_guard(self, path, code, text):
        rel = path.relative_to(REPO)
        if "#pragma once" in text:
            self.report(
                path, line_of(text, text.find("#pragma once")),
                "include-guard",
                "#pragma once; this repo uses path-derived #ifndef "
                "guards")
        parts = list(rel.parts)
        if parts[0] == "src":
            parts = parts[1:]
        stem = "_".join(parts)
        expected = "LSIM_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper()
        m = re.search(r"#ifndef\s+(\w+)", code)
        if not m:
            self.report(path, 1, "include-guard",
                        f"missing include guard (expected #ifndef "
                        f"{expected})")
            return
        if m.group(1) != expected:
            self.report(path, line_of(code, m.start()),
                        "include-guard",
                        f"guard '{m.group(1)}' does not match the "
                        f"path-derived name '{expected}'")
            return
        if not re.search(r"#define\s+" + re.escape(expected) + r"\b",
                         code):
            self.report(path, line_of(code, m.start()),
                        "include-guard",
                        f"#ifndef {expected} without a matching "
                        "#define")

    # ----------------------------------------------- rule: fault-point

    FAULT_IO_PATTERN = re.compile(
        r"\batomicWriteFile\s*\(|\bFileLock\s*::\s*acquire\b"
        r"|::recv\s*\(|::send\s*\(|::accept4\s*\(")

    # An LSIM_FAULT check must appear this many lines (or fewer)
    # before the I/O call it guards; a few lines after also count,
    # for sites (accept4) where the fault decision needs the fd.
    FAULT_WINDOW_BEFORE = 25
    FAULT_WINDOW_AFTER = 5

    def check_fault_points(self, path, code):
        lines = code.split("\n")
        for m in self.FAULT_IO_PATTERN.finditer(code):
            line = line_of(code, m.start())
            lo = max(0, line - 1 - self.FAULT_WINDOW_BEFORE)
            hi = min(len(lines), line + self.FAULT_WINDOW_AFTER)
            if "LSIM_FAULT" in "\n".join(lines[lo:hi]):
                continue
            call = m.group(0).rstrip("(").strip()
            self.report(
                path, line, "fault-point",
                f"I/O call '{call}' has no LSIM_FAULT point within "
                f"{self.FAULT_WINDOW_BEFORE} preceding lines; "
                "register a named fault point (common/fault.hh) so "
                "the chaos suite can reach this failure path")

    def check_fault_macro(self, path, code):
        for m in re.finditer(r"\bdetail\s*::\s*shouldFail\s*\(",
                             code):
            self.report(
                path, line_of(code, m.start()), "fault-macro",
                "direct fault::detail::shouldFail call; go through "
                "LSIM_FAULT / LSIM_FAULT_ERRNO so disabled runs keep "
                "the single-atomic-load fast path")

    # ----------------------------------------------- rule: determinism

    DETERMINISM_PATTERNS = [
        (re.compile(r"\b(?:std::)?s?rand\s*\("), "rand()/srand()"),
        (re.compile(r"\brandom_device\b"), "std::random_device"),
        (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
         "wall-clock time()"),
        (re.compile(
            r"\b(?:steady_clock|system_clock|high_resolution_clock)"
            r"\s*::\s*now\b"), "clock reads"),
    ]

    def check_determinism(self, path, code):
        for pattern, what in self.DETERMINISM_PATTERNS:
            for m in pattern.finditer(code):
                self.report(
                    path, line_of(code, m.start()), "determinism",
                    f"{what} in replay/kernel code; results must be "
                    "bit-reproducible — derive randomness from "
                    "common/random.hh seeded state, and timestamps "
                    "from the caller")


# --------------------------------------------------------- allowlist


def load_allowlist():
    allowed = {}
    if not ALLOWLIST.exists():
        return allowed
    for raw in ALLOWLIST.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        name, _, count = line.rpartition(" ")
        allowed[name.strip()] = int(count)
    return allowed


def save_allowlist(counts):
    lines = [
        "# fatal()/die() call sites still present in library code",
        "# (src/). Library errors are reported by throwing; these",
        "# sites predate that rule and are being burned down —",
        "# tools/lint.py fails if any count grows, and requires this",
        "# file to be refreshed (lint.py --update) when one shrinks,",
        "# so the totals are monotonically decreasing.",
        "#",
        "# <path> <call sites>",
    ]
    for name in sorted(counts):
        lines.append(f"{name} {counts[name]}")
    ALLOWLIST.write_text("\n".join(lines) + "\n")


# --------------------------------------------------------------- main


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the no-fatal allowlist from current counts "
        "(only ever lowers the ratchet; growth still fails)")
    args = parser.parse_args()

    linter = Linter()
    fatal_counts = {}

    for path in sorted(REPO.glob("src/**/*")):
        if path.suffix not in SRC_EXTS:
            continue
        text = path.read_text()
        code = strip_code(text)
        rel = str(path.relative_to(REPO))

        if rel.startswith(("src/store/", "src/serve/", "src/obs/")):
            linter.check_atomic_write(path, code)
        linter.check_snapshot_write(path, code, text)
        if not rel.startswith("src/common/logging"):
            count = linter.count_fatal(code)
            if count:
                fatal_counts[rel] = count
        linter.check_signal_safety(path, code)
        if rel != "src/common/mutex.hh":
            linter.check_raw_mutex(path, code)
        if path.suffix in (".hh", ".h"):
            linter.check_include_guard(path, code, text)
        if rel.startswith(("src/replay/", "src/sleep/")):
            linter.check_determinism(path, code)
        if (rel.startswith(("src/store/", "src/serve/"))
                and path.suffix == ".cc"):
            linter.check_fault_points(path, code)
        if not rel.startswith("src/common/fault"):
            linter.check_fault_macro(path, code)

    for path in sorted(REPO.glob("bench/**/*")) + sorted(
            REPO.glob("tools/**/*")):
        if path.suffix not in SRC_EXTS:
            continue
        text = path.read_text()
        code = strip_code(text)
        linter.check_signal_safety(path, code)
        if path.suffix in (".hh", ".h"):
            linter.check_include_guard(path, code, text)

    # The ratchet: counts may only ever shrink. --update locks a
    # shrink in; growth is a violation either way (bootstrap — no
    # allowlist yet — being the one exception).
    bootstrap = not ALLOWLIST.exists()
    allowed = load_allowlist()
    for rel in sorted(set(fatal_counts) | set(allowed)):
        have = fatal_counts.get(rel, 0)
        limit = allowed.get(rel, 0)
        if have > limit and not bootstrap:
            linter.violations.append(
                f"{rel}: [no-fatal] {have} fatal()/die() call "
                f"site(s), allowlist permits {limit}: library code "
                "reports errors by throwing (see serve/spec.hh for "
                "the pattern); the CLI catches and exits")
        elif have < limit and not args.update:
            linter.violations.append(
                f"{rel}: [no-fatal] allowlist says {limit} but only "
                f"{have} call site(s) remain — nice burn-down; run "
                "'tools/lint.py --update' to lock in the lower count")

    if args.update and not linter.violations:
        save_allowlist(fatal_counts)
        print(f"lint: allowlist refreshed "
              f"({sum(fatal_counts.values())} fatal()/die() sites "
              f"across {len(fatal_counts)} files)")

    if linter.violations:
        for v in linter.violations:
            print(v)
        print(f"lint: {len(linter.violations)} violation(s)")
        return 1
    total = sum(fatal_counts.values())
    print(f"lint: clean ({total} grandfathered fatal()/die() sites "
          "remaining)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
