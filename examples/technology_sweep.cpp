/**
 * @file
 * Scenario: a designer asks "at which technology point should my
 * functional unit start using the sleep mode, and which policy?"
 *
 * Sweeps the circuit model across threshold voltages and
 * temperatures, derives the energy-model parameters at each point,
 * and reports the breakeven interval and the preferred policy for a
 * workload with a given idle-interval distribution.
 */

#include <iostream>

#include "circuit/fu_circuit.hh"
#include "common/table.hh"
#include "energy/breakeven.hh"
#include "energy/policy_model.hh"

int
main()
{
    using namespace lsim;
    using namespace lsim::energy;

    // The workload: a unit busy half the time with 12-cycle average
    // idle intervals (typical of the paper's Figure 7 distribution).
    WorkloadPoint w;
    w.usage = 0.5;
    w.idle_interval = 12.0;

    std::cout << "Technology sweep: when does the sleep mode pay "
                 "off?\n(usage 50%, mean idle interval 12 cycles, "
                 "alpha = 0.5)\n\n";

    Table table({"vt_low (V)", "temp (C)", "p", "breakeven (cyc)",
                 "AA energy", "MS energy", "preferred"});

    for (double vt_low : {0.25, 0.20, 0.15, 0.10}) {
        for (double temp_c : {65.0, 110.0}) {
            circuit::Technology tech;
            tech.vt_low = vt_low;
            tech.temperature_k = temp_c + 273.15;
            circuit::FunctionalUnitCircuit fu(tech);
            auto mp = ModelParams::fromCircuit(fu, 0.5);

            const double be = breakevenInterval(mp);
            PolicyModel pm(mp, w);
            const double aa = pm.relativeEnergy(Policy::AlwaysActive);
            const double ms = pm.relativeEnergy(Policy::MaxSleep);
            table.addRow({
                fixed(vt_low, 2),
                fixed(temp_c, 0),
                fixed(mp.p, 3),
                fixed(be, 1),
                fixed(aa, 3),
                fixed(ms, 3),
                ms < aa ? "MaxSleep" : "AlwaysActive",
            });
        }
    }
    table.print(std::cout);
    std::cout << "\nLower thresholds and higher temperature push p "
                 "up, the breakeven interval down,\nand flip the "
                 "preferred policy from AlwaysActive to MaxSleep — "
                 "the paper's core story.\n";
    return 0;
}
