/**
 * @file
 * Scenario: a designer asks "at which technology point should my
 * functional unit start using the sleep mode, and which policy?"
 *
 * Sweeps the circuit model across threshold voltages and
 * temperatures, derives the energy-model parameters at each point,
 * and lets api::SweepRunner evaluate the candidate policies against
 * a real benchmark's idle behavior at every point — the benchmark
 * is simulated exactly once, and the technology grid is replayed
 * from its IdleProfile across a thread pool.
 */

#include <iostream>
#include <vector>

#include "api/sweep.hh"
#include "circuit/fu_circuit.hh"
#include "common/table.hh"
#include "energy/breakeven.hh"

int
main()
{
    using namespace lsim;
    using namespace lsim::energy;

    // Derive one technology point per (vt_low, temperature) corner.
    std::vector<ModelParams> corners;
    std::vector<std::string> labels;
    for (double vt_low : {0.25, 0.20, 0.15, 0.10}) {
        for (double temp_c : {65.0, 110.0}) {
            circuit::Technology tech;
            tech.vt_low = vt_low;
            tech.temperature_k = temp_c + 273.15;
            circuit::FunctionalUnitCircuit fu(tech);
            corners.push_back(ModelParams::fromCircuit(fu, 0.5));
            labels.push_back(fixed(vt_low, 2) + " V / " +
                             fixed(temp_c, 0) + " C");
        }
    }

    // One gcc simulation feeds the whole grid.
    api::SweepConfig cfg;
    cfg.workloads = {"gcc"};
    cfg.technologies = corners;
    cfg.policies = {"always-active", "max-sleep", "gradual"};
    cfg.insts = 200'000;
    const auto sweep = api::SweepRunner(cfg).run();

    std::cout << "Technology sweep: when does the sleep mode pay "
                 "off?\n(gcc idle profile, alpha = 0.5)\n\n";

    Table table({"corner", "p", "breakeven (cyc)", "AA energy",
                 "MS energy", "GS energy", "preferred"});
    for (std::size_t t = 0; t < corners.size(); ++t) {
        const auto &cell = sweep.cell(0, t);
        const double aa = cell.policies[0].relative_to_base;
        const double ms = cell.policies[1].relative_to_base;
        const double gs = cell.policies[2].relative_to_base;
        double best = aa;
        std::string preferred = "AlwaysActive";
        if (ms < best) {
            best = ms;
            preferred = "MaxSleep";
        }
        if (gs < best)
            preferred = "GradualSleep";
        table.addRow({
            labels[t],
            fixed(corners[t].p, 3),
            fixed(breakevenInterval(corners[t]), 1),
            fixed(aa, 3),
            fixed(ms, 3),
            fixed(gs, 3),
            preferred,
        });
    }
    table.print(std::cout);
    std::cout << "\nLower thresholds and higher temperature push p "
                 "up, the breakeven interval down,\nand flip the "
                 "preferred policy from AlwaysActive toward the "
                 "sleep policies — the paper's core story.\n";
    return 0;
}
