/**
 * @file
 * Quickstart: the three layers of the library in ~60 lines.
 *
 *  1. Circuit level — characterize a dual-Vt domino gate and the
 *     generic functional unit built from it.
 *  2. Analytical level — derive the technology parameters (p, k, s)
 *     and ask when sleeping pays off.
 *  3. Policy level — feed a busy/idle pattern through the paper's
 *     four sleep policies and compare energies.
 */

#include <iostream>

#include "circuit/fu_circuit.hh"
#include "energy/breakeven.hh"
#include "sleep/accumulator.hh"

int
main()
{
    using namespace lsim;

    // 1. Circuit level: a 70 nm dual-Vt domino functional unit.
    circuit::Technology tech; // the paper's default corner
    circuit::FunctionalUnitCircuit fu(tech);
    std::cout << "FU of " << fu.numGates() << " OR8 gates: "
              << "dynamic " << fu.dynamicEnergy() / 1000 << " pJ, "
              << "leakage " << fu.leakHi() / 1000
              << " pJ/cycle awake vs " << fu.leakLo()
              << " fJ/cycle asleep\n";

    // 2. Analytical level: derive model parameters and the breakeven.
    auto mp = energy::ModelParams::fromCircuit(fu, /*alpha=*/0.5);
    std::cout << "leakage factor p = " << mp.p << ", sleep ratio k = "
              << mp.k << ", overhead s = " << mp.s << "\n";
    std::cout << "sleeping pays off for idle intervals >= "
              << energy::breakevenInterval(mp) << " cycles\n";

    // The paper's pessimistic analysis point:
    mp.p = 0.05;
    mp.k = 0.001;
    mp.s = 0.01;

    // 3. Policy level: a workload that alternates 60 busy cycles
    //    with idle periods of varying length.
    auto eval = sleep::PolicyEvaluator::paperPolicies(mp);
    for (Cycle idle : {4u, 12u, 40u, 120u, 8u, 30u, 400u}) {
        eval.feedRun(true, 60);
        eval.feedRun(false, idle);
    }

    std::cout << "\npolicy energies (normalized to E_A), "
              << eval.totalCycles() << " cycles, idle fraction "
              << eval.idleStats().idleFraction() << ":\n";
    for (const auto &r : eval.results()) {
        std::cout << "  " << r.name << ": " << r.energy
                  << " (leakage share "
                  << 100.0 * r.leakage_fraction << "%)\n";
    }
    return 0;
}
