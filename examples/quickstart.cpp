/**
 * @file
 * Quickstart: the four layers of the library.
 *
 *  1. Circuit level — characterize a dual-Vt domino gate and the
 *     generic functional unit built from it.
 *  2. Analytical level — derive the technology parameters (p, k, s)
 *     and ask when sleeping pays off.
 *  3. Policy level — feed a busy/idle pattern through the paper's
 *     four sleep policies and compare energies.
 *  4. Experiment facade — one builder call runs the whole
 *     simulate-then-evaluate pipeline on a real benchmark.
 */

#include <iostream>

#include "api/experiment.hh"
#include "circuit/fu_circuit.hh"
#include "energy/breakeven.hh"
#include "sleep/accumulator.hh"

int
main()
{
    using namespace lsim;

    // 1. Circuit level: a 70 nm dual-Vt domino functional unit.
    circuit::Technology tech; // the paper's default corner
    circuit::FunctionalUnitCircuit fu(tech);
    std::cout << "FU of " << fu.numGates() << " OR8 gates: "
              << "dynamic " << fu.dynamicEnergy() / 1000 << " pJ, "
              << "leakage " << fu.leakHi() / 1000
              << " pJ/cycle awake vs " << fu.leakLo()
              << " fJ/cycle asleep\n";

    // 2. Analytical level: derive model parameters and the breakeven.
    auto mp = energy::ModelParams::fromCircuit(fu, /*alpha=*/0.5);
    std::cout << "leakage factor p = " << mp.p << ", sleep ratio k = "
              << mp.k << ", overhead s = " << mp.s << "\n";
    std::cout << "sleeping pays off for idle intervals >= "
              << energy::breakevenInterval(mp) << " cycles\n";

    // The paper's pessimistic analysis point:
    mp.p = 0.05;
    mp.k = 0.001;
    mp.s = 0.01;

    // 3. Policy level: a workload that alternates 60 busy cycles
    //    with idle periods of varying length.
    auto eval = sleep::PolicyEvaluator::paperPolicies(mp);
    for (Cycle idle : {4u, 12u, 40u, 120u, 8u, 30u, 400u}) {
        eval.feedRun(true, 60);
        eval.feedRun(false, idle);
    }

    std::cout << "\npolicy energies (normalized to E_A), "
              << eval.totalCycles() << " cycles, idle fraction "
              << eval.idleStats().idleFraction() << ":\n";
    for (const auto &r : eval.results()) {
        std::cout << "  " << r.name << ": " << r.energy
                  << " (leakage share "
                  << 100.0 * r.leakage_fraction << "%)\n";
    }

    // 4. Experiment facade: the same flow on a real Table 3
    //    benchmark — simulate the O3 core once, evaluate
    //    registry-named policies at a technology point.
    const auto result = api::Experiment::builder()
                            .workload("gcc")
                            .insts(200'000)
                            .technology(/*p=*/0.05, /*alpha=*/0.5)
                            .policies({"max-sleep", "gradual",
                                       "always-active", "timeout:64"})
                            .run();
    std::cout << "\ngcc on the O3 core (IPC "
              << result.sim.sim.ipc << ", idle fraction "
              << result.sim.idle.idleFraction() << "):\n";
    for (const auto &r : result.policies) {
        std::cout << "  " << r.name << ": "
                  << r.relative_to_base
                  << " of the 100%-compute energy\n";
    }
    return 0;
}
