/**
 * @file
 * Scenario: tuning the GradualSleep slice count for a bursty
 * workload. Demonstrates the analytical GradualSleep model and the
 * cycle-level controller on the same interval mix, showing how the
 * slice count trades MaxSleep-like versus AlwaysActive-like
 * behavior, and that the paper's breakeven-sized default is a
 * robust choice.
 */

#include <iostream>

#include "common/table.hh"
#include "energy/breakeven.hh"
#include "energy/gradual_sleep_model.hh"
#include "sleep/accumulator.hh"
#include "sleep/policy_registry.hh"

int
main()
{
    using namespace lsim;
    using namespace lsim::energy;

    ModelParams mp;
    mp.p = 0.05;
    mp.alpha = 0.5;
    mp.k = 0.001;
    mp.s = 0.01;
    const double be = breakevenInterval(mp);
    std::cout << "GradualSleep tuning at p = " << mp.p
              << " (breakeven " << fixed(be, 1) << " cycles)\n\n";

    // Single-interval view (the Figure 5c perspective).
    std::cout << "Energy over one idle interval, by slice count:\n";
    Table t1({"slices", "L=2", "L=10", "L=20", "L=50", "L=200"});
    for (unsigned slices : {1u, 5u, 20u, 60u, 200u}) {
        GradualSleepModel gs(mp, slices);
        t1.addRow({std::to_string(slices),
                   fixed(gs.idleEnergy(2), 3),
                   fixed(gs.idleEnergy(10), 3),
                   fixed(gs.idleEnergy(20), 3),
                   fixed(gs.idleEnergy(50), 3),
                   fixed(gs.idleEnergy(200), 3)});
    }
    t1.print(std::cout);

    // Whole-workload view: a bimodal interval mix (mostly short
    // bursts with occasional long gaps, like the Figure 7 shape).
    std::cout << "\nBursty workload (80% 4-cycle, 15% 25-cycle, 5% "
                 "600-cycle idle intervals):\n";
    Table t2({"slices", "energy vs NoOverhead"});
    const auto &registry = sleep::PolicyRegistry::instance();
    for (unsigned slices : {1u, 2u, 5u, 10u, 20u, 40u, 100u, 400u}) {
        // Parameterized registry specs ("gradual:<n>") configure the
        // candidate; "no-overhead" provides the reference.
        sleep::PolicyEvaluator eval(
            mp, registry.makeSet({"gradual:" + std::to_string(slices),
                                  "no-overhead"},
                                 mp));
        for (int i = 0; i < 100; ++i) {
            eval.feedRun(true, 10);
            eval.feedRun(false, i % 20 == 0 ? (i % 40 == 0 ? 600 : 25)
                                            : 4);
        }
        const auto res = eval.results();
        t2.addRow({std::to_string(slices),
                   fixed(res[0].energy / res[1].energy, 3)});
    }
    t2.print(std::cout);
    std::cout << "\nSmall slice counts over-pay on the short bursts; "
                 "large counts leak through the\nlong gaps. The "
                 "breakeven-sized design (~"
              << static_cast<unsigned>(be + 0.5)
              << " slices) sits near the optimum.\n";
    return 0;
}
