/**
 * @file
 * Full-stack scenario: simulate a benchmark on the out-of-order
 * core, capture per-FU idle behavior, and report what each sleep
 * policy would have cost — the paper's Section 5 flow for a single
 * benchmark, expressed with the api::Experiment facade.
 *
 * The timing model runs ONCE (builder.session()); every technology
 * point is then a cheap replay of the captured IdleProfile.
 *
 * Usage: fu_sleep_sim [benchmark] [insts]
 *        (default: mcf 500000; benchmarks: health mst gcc gzip mcf
 *         parser twolf vortex vpr)
 */

#include <cstdlib>
#include <iostream>

#include "api/experiment.hh"
#include "common/table.hh"

int
main(int argc, char **argv)
{
    using namespace lsim;

    const std::string name = argc > 1 ? argv[1] : "mcf";
    const std::uint64_t insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 500000;

    const auto session = api::Experiment::builder()
                             .workload(name)
                             .insts(insts)
                             .paperPolicies()
                             .session();
    const auto &ws = session.sim();

    std::cout << "simulated " << name << " (" << ws.num_fus
              << " integer FUs, " << insts << " instructions)\n";
    std::cout << "\nIPC " << fixed(ws.sim.ipc, 3)
              << ", branch mispredict "
              << fixed(100 * ws.sim.bpred.dirMispredictRate(), 1)
              << "%, L1D miss "
              << fixed(100 * ws.sim.l1d.missRate(), 1)
              << "%, L2 miss "
              << fixed(100 * ws.sim.l2.missRate(), 1) << "%\n";
    std::cout << "FU idle fraction "
              << fixed(ws.idle.idleFraction(), 3)
              << ", mean idle interval "
              << fixed(ws.idle.meanInterval(), 1) << " cycles over "
              << ws.idle.numIntervals() << " intervals\n\n";

    Table table({"p", "MaxSleep", "GradualSleep", "AlwaysActive",
                 "NoOverhead", "winner"});
    for (double p : {0.05, 0.1, 0.2, 0.5, 1.0}) {
        const auto result = session.evaluate(p);
        const auto &res = result.policies;
        std::size_t best = 0;
        for (std::size_t i = 0; i < 3; ++i)
            if (res[i].energy < res[best].energy)
                best = i;
        table.addRow({fixed(p, 2),
                      fixed(res[0].relative_to_base, 3),
                      fixed(res[1].relative_to_base, 3),
                      fixed(res[2].relative_to_base, 3),
                      fixed(res[3].relative_to_base, 3),
                      res[best].name});
    }
    table.print(std::cout);
    return 0;
}
